use std::collections::HashMap;

use crate::dense::{Interner, NameId};
use crate::instr::{BlockId, Instr, Terminator};
use crate::reg::{FReg, Reg};
use crate::validate::ValidateError;

/// Identifier of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The raw function index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for FuncId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A reference to a conditional branch: the block whose terminator is the
/// branch. Every block has at most one conditional branch (its terminator),
/// so this pair identifies a static branch site uniquely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchRef {
    pub func: FuncId,
    pub block: BlockId,
}

impl std::fmt::Display for BranchRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.func, self.block)
    }
}

/// A basic block: straight-line instructions plus one terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub instrs: Vec<Instr>,
    pub term: Terminator,
}

impl Block {
    /// Number of dynamic instructions this block contributes when executed,
    /// counting the terminator (branches and jumps are real instructions on
    /// the machines the paper measured).
    pub fn len_with_term(&self) -> u64 {
        self.instrs.len() as u64 + 1
    }
}

/// A function: an entry block (always [`BlockId`] 0), basic blocks,
/// parameter registers, and a stack frame size for local arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    name: String,
    blocks: Vec<Block>,
    params: Vec<Reg>,
    fparams: Vec<FReg>,
    n_regs: u32,
    n_fregs: u32,
    frame_words: i64,
}

impl Function {
    pub(crate) fn from_parts(
        name: String,
        blocks: Vec<Block>,
        params: Vec<Reg>,
        fparams: Vec<FReg>,
        n_regs: u32,
        n_fregs: u32,
        frame_words: i64,
    ) -> Function {
        Function {
            name,
            blocks,
            params,
            fparams,
            n_regs,
            n_fregs,
            frame_words,
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block. Always block 0.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// All basic blocks, indexable by [`BlockId::index`].
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this function.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Integer parameter registers, in argument order.
    pub fn params(&self) -> &[Reg] {
        &self.params
    }

    /// Float parameter registers, in argument order.
    pub fn fparams(&self) -> &[FReg] {
        &self.fparams
    }

    /// Number of integer registers this function names (including the
    /// specials).
    pub fn n_regs(&self) -> u32 {
        self.n_regs
    }

    /// Number of float registers this function names.
    pub fn n_fregs(&self) -> u32 {
        self.n_fregs
    }

    /// Stack frame size in words (local array storage addressed off `SP`).
    pub fn frame_words(&self) -> i64 {
        self.frame_words
    }

    /// Iterator over block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Replaces this function's blocks, keeping name, parameters,
    /// register counts, and frame size. Used by CFG simplification
    /// passes; the result is re-validated when assembled into a
    /// [`Program`].
    pub fn with_blocks(self, blocks: Vec<Block>) -> Function {
        Function { blocks, ..self }
    }

    /// Assembles a function from raw parts — the constructor used by
    /// transformation passes (e.g. inlining) that change register counts
    /// or frame sizes. The result is validated when it joins a
    /// [`Program`].
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        name: String,
        blocks: Vec<Block>,
        params: Vec<Reg>,
        fparams: Vec<FReg>,
        n_regs: u32,
        n_fregs: u32,
        frame_words: i64,
    ) -> Function {
        Function {
            name,
            blocks,
            params,
            fparams,
            n_regs,
            n_fregs,
            frame_words,
        }
    }

    /// An owned copy of the blocks (for transformation passes).
    pub fn blocks_vec(&self) -> Vec<Block> {
        self.blocks.clone()
    }

    /// Total static instruction count, terminators included.
    pub fn static_size(&self) -> u64 {
        self.blocks.iter().map(|b| b.len_with_term()).sum()
    }
}

/// A named global array's location in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalSym {
    /// Word offset from the global pointer base.
    pub offset: i64,
    /// Extent in words.
    pub len: i64,
    /// `true` if the array holds `f64` bit patterns.
    pub is_float: bool,
}

/// Initial values to poke into a program's global region before running —
/// the "dataset" in the paper's sense.
///
/// # Example
///
/// ```
/// use bpfree_ir::GlobalValues;
/// let mut g = GlobalValues::default();
/// g.set_int("n", vec![100]);
/// g.set_float("tol", vec![1e-9]);
/// assert_eq!(g.ints().len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GlobalValues {
    ints: Vec<(String, Vec<i64>)>,
    floats: Vec<(String, Vec<f64>)>,
}

impl GlobalValues {
    /// Creates an empty value set.
    pub fn new() -> GlobalValues {
        GlobalValues::default()
    }

    /// Sets the initial contents of an integer global (scalar = 1 element).
    pub fn set_int(&mut self, name: impl Into<String>, values: Vec<i64>) -> &mut Self {
        self.ints.push((name.into(), values));
        self
    }

    /// Sets the initial contents of a float global.
    pub fn set_float(&mut self, name: impl Into<String>, values: Vec<f64>) -> &mut Self {
        self.floats.push((name.into(), values));
        self
    }

    /// Integer initialisations in insertion order.
    pub fn ints(&self) -> &[(String, Vec<i64>)] {
        &self.ints
    }

    /// Float initialisations in insertion order.
    pub fn floats(&self) -> &[(String, Vec<f64>)] {
        &self.floats
    }
}

/// A whole program: functions, an entry point, and a global data layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    funcs: Vec<Function>,
    entry: FuncId,
    globals_words: i64,
    symbols: HashMap<String, GlobalSym>,
    /// Function names interned in function order (first occurrence
    /// wins for duplicates), so name lookups are index-based.
    fn_names: Interner,
    /// Per-function interned name id, parallel to `funcs`.
    fn_name_ids: Vec<NameId>,
}

impl Program {
    /// Builds a program whose entry point is the function named `main`
    /// (or function 0 when no function is named `main`), then validates it.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if any block target, callee, register
    /// index, or global extent is malformed. See [`Program::validate`].
    pub fn new(funcs: Vec<Function>, globals_words: i64) -> Result<Program, ValidateError> {
        let entry = funcs
            .iter()
            .position(|f| f.name() == "main")
            .map(|i| FuncId(i as u32))
            .unwrap_or(FuncId(0));
        let mut fn_names = Interner::new();
        let fn_name_ids = funcs.iter().map(|f| fn_names.intern(f.name())).collect();
        let p = Program {
            funcs,
            entry,
            globals_words,
            symbols: HashMap::new(),
            fn_names,
            fn_name_ids,
        };
        p.validate()?;
        Ok(p)
    }

    /// All functions, indexable by [`FuncId::index`].
    pub fn funcs(&self) -> &[Function] {
        &self.funcs
    }

    /// The function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Looks up a function by name via the interned-name index. With
    /// duplicate names the first function wins, matching a linear scan.
    pub fn func_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        let id = self.fn_names.lookup(name)?;
        let i = self.fn_name_ids.iter().position(|&n| n == id)?;
        Some((FuncId(i as u32), &self.funcs[i]))
    }

    /// The interned name id of `func` (shared by same-named functions).
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn func_name_id(&self, func: FuncId) -> NameId {
        self.fn_name_ids[func.index()]
    }

    /// The program's function-name interner.
    pub fn fn_names(&self) -> &Interner {
        &self.fn_names
    }

    /// The entry function id.
    pub fn entry(&self) -> FuncId {
        self.entry
    }

    /// Size of the global data region in words.
    pub fn globals_words(&self) -> i64 {
        self.globals_words
    }

    /// The symbol table for named globals.
    pub fn symbols(&self) -> &HashMap<String, GlobalSym> {
        &self.symbols
    }

    /// Looks up a global symbol by name.
    pub fn symbol(&self, name: &str) -> Option<GlobalSym> {
        self.symbols.get(name).copied()
    }

    pub(crate) fn set_symbols(&mut self, symbols: HashMap<String, GlobalSym>) {
        self.symbols = symbols;
    }

    /// Iterator over function ids in index order.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.funcs.len() as u32).map(FuncId)
    }

    /// Total static instruction count across all functions.
    pub fn static_size(&self) -> u64 {
        self.funcs.iter().map(|f| f.static_size()).sum()
    }

    /// All conditional branch sites in the program.
    pub fn branches(&self) -> Vec<BranchRef> {
        let mut out = Vec::new();
        for fid in self.func_ids() {
            for bid in self.func(fid).block_ids() {
                if self.func(fid).block(bid).term.is_branch() {
                    out.push(BranchRef {
                        func: fid,
                        block: bid,
                    });
                }
            }
        }
        out
    }
}

/// Assembles a [`Program`] from finished functions plus a symbol table.
///
/// Used by the Cmm lowering pass, which knows global names and offsets.
///
/// # Example
///
/// ```
/// use bpfree_ir::{FunctionBuilder, ProgramBuilder, Terminator, GlobalSym};
///
/// let mut fb = FunctionBuilder::new("main");
/// let e = fb.entry();
/// fb.set_term(e, Terminator::Ret { val: None, fval: None });
///
/// let mut pb = ProgramBuilder::new();
/// pb.add_function(fb.finish().unwrap());
/// pb.add_global("n", GlobalSym { offset: 0, len: 1, is_float: false });
/// let program = pb.finish(1).unwrap();
/// assert!(program.symbol("n").is_some());
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    funcs: Vec<Function>,
    symbols: HashMap<String, GlobalSym>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Appends a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.funcs.push(f);
        FuncId(self.funcs.len() as u32 - 1)
    }

    /// Registers a named global symbol.
    pub fn add_global(&mut self, name: impl Into<String>, sym: GlobalSym) {
        self.symbols.insert(name.into(), sym);
    }

    /// Validates and produces the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] on any malformed function or symbol.
    pub fn finish(self, globals_words: i64) -> Result<Program, ValidateError> {
        let mut p = Program::new(self.funcs, globals_words)?;
        for (name, sym) in &self.symbols {
            if sym.offset < 0 || sym.len < 0 || sym.offset + sym.len > globals_words {
                return Err(ValidateError::GlobalOutOfRange {
                    name: name.clone(),
                    offset: sym.offset,
                    len: sym.len,
                    globals_words,
                });
            }
        }
        p.set_symbols(self.symbols);
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn trivial(name: &str) -> Function {
        let mut b = FunctionBuilder::new(name);
        let e = b.entry();
        b.set_term(
            e,
            Terminator::Ret {
                val: None,
                fval: None,
            },
        );
        b.finish().unwrap()
    }

    #[test]
    fn entry_prefers_main() {
        let p = Program::new(vec![trivial("helper"), trivial("main")], 0).unwrap();
        assert_eq!(p.entry(), FuncId(1));
        assert_eq!(p.func(p.entry()).name(), "main");
    }

    #[test]
    fn entry_defaults_to_first() {
        let p = Program::new(vec![trivial("start")], 0).unwrap();
        assert_eq!(p.entry(), FuncId(0));
    }

    #[test]
    fn func_by_name_finds_functions() {
        let p = Program::new(vec![trivial("a"), trivial("b")], 0).unwrap();
        assert_eq!(p.func_by_name("b").unwrap().0, FuncId(1));
        assert!(p.func_by_name("nope").is_none());
    }

    #[test]
    fn global_out_of_range_rejected() {
        let mut pb = ProgramBuilder::new();
        pb.add_function(trivial("main"));
        pb.add_global(
            "g",
            GlobalSym {
                offset: 5,
                len: 10,
                is_float: false,
            },
        );
        assert!(matches!(
            pb.finish(8),
            Err(ValidateError::GlobalOutOfRange { .. })
        ));
    }

    #[test]
    fn branches_enumerates_branch_sites() {
        use crate::instr::Cond;
        let mut b = FunctionBuilder::new("main");
        let e = b.entry();
        let t = b.new_block();
        let f = b.new_block();
        let r = b.new_reg();
        b.push(e, Instr::Li { rd: r, imm: 1 });
        b.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Gtz(r),
                taken: t,
                fallthru: f,
            },
        );
        b.set_term(
            t,
            Terminator::Ret {
                val: None,
                fval: None,
            },
        );
        b.set_term(
            f,
            Terminator::Ret {
                val: None,
                fval: None,
            },
        );
        let p = Program::new(vec![b.finish().unwrap()], 0).unwrap();
        let brs = p.branches();
        assert_eq!(brs.len(), 1);
        assert_eq!(
            brs[0],
            BranchRef {
                func: FuncId(0),
                block: BlockId(0)
            }
        );
    }

    #[test]
    fn static_size_counts_terminators() {
        let p = Program::new(vec![trivial("main")], 0).unwrap();
        assert_eq!(p.static_size(), 1);
    }
}
