use crate::function::FuncId;
use crate::reg::{FReg, Reg};

/// Identifier of a basic block within one function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The raw block index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Integer binary ALU operations.
///
/// The comparison forms (`Slt`, `Sle`, `Seq`, `Sne`) produce 0 or 1, like
/// the MIPS `slt` family; conditional control flow then tests the result
/// against zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    /// Signed division. Division by zero yields 0 (the simulator defines
    /// this rather than trapping).
    Div,
    /// Signed remainder. Remainder by zero yields 0.
    Rem,
    And,
    Or,
    Xor,
    /// Shift left logical (shift amount taken modulo 64).
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Set if less than (signed): `rd = (rs < rt) as i64`.
    Slt,
    /// Set if less than or equal (signed).
    Sle,
    /// Set if equal.
    Seq,
    /// Set if not equal.
    Sne,
}

/// Floating-point binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FBinOp {
    Add,
    Sub,
    Mul,
    Div,
}

/// Floating-point comparison kinds for [`Instr::CmpF`].
///
/// `Eq` matters to the opcode heuristic: the paper predicts that
/// floating-point *equality* tests usually evaluate false.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmp {
    Eq,
    Lt,
    Le,
}

/// A non-terminator instruction.
///
/// Memory is word addressed: offsets and sizes count 64-bit words, not
/// bytes. Floating-point values occupy one word (stored as raw `f64` bits).
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `rd <- imm`
    Li { rd: Reg, imm: i64 },
    /// `rd <- rs`
    Move { rd: Reg, rs: Reg },
    /// `rd <- rs <op> rt`
    Bin {
        op: BinOp,
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// `rd <- rs <op> imm`
    BinImm {
        op: BinOp,
        rd: Reg,
        rs: Reg,
        imm: i64,
    },
    /// `fd <- imm`
    LiF { fd: FReg, imm: f64 },
    /// `fd <- fs`
    MoveF { fd: FReg, fs: FReg },
    /// `fd <- fs <op> ft`
    BinF {
        op: FBinOp,
        fd: FReg,
        fs: FReg,
        ft: FReg,
    },
    /// `fd <- (f64) rs`
    CvtIF { fd: FReg, rs: Reg },
    /// `rd <- (i64) fs` (truncating; saturates at the `i64` range)
    CvtFI { rd: Reg, fs: FReg },
    /// Set the floating-point condition flag: `fflag <- fs <cmp> ft`.
    ///
    /// Consumed by [`Cond::FTrue`] / [`Cond::FFalse`] branches.
    CmpF { cmp: FCmp, fs: FReg, ft: FReg },
    /// `rd <- mem[base + offset]`
    Load { rd: Reg, base: Reg, offset: i64 },
    /// `mem[base + offset] <- rs`
    Store { rs: Reg, base: Reg, offset: i64 },
    /// `fd <- mem[base + offset]` (reinterpreting the word as `f64` bits)
    LoadF { fd: FReg, base: Reg, offset: i64 },
    /// `mem[base + offset] <- fs`
    StoreF { fs: FReg, base: Reg, offset: i64 },
    /// `rd <-` address of a fresh `size`-word heap block (bump allocated,
    /// zero initialised). A `size <= 0` request yields a distinct non-null
    /// address of zero usable words.
    Alloc { rd: Reg, size: Reg },
    /// Direct call. Integer arguments are copied into the callee's integer
    /// parameter registers, float arguments into its float parameter
    /// registers; an optional integer and/or float result is copied back.
    Call {
        callee: FuncId,
        args: Vec<Reg>,
        fargs: Vec<FReg>,
        ret: Option<Reg>,
        fret: Option<FReg>,
    },
}

impl Instr {
    /// Is this a call instruction? (Used by the call heuristic.)
    pub fn is_call(&self) -> bool {
        matches!(self, Instr::Call { .. })
    }

    /// Is this a store to memory? (Used by the store heuristic.)
    pub fn is_store(&self) -> bool {
        matches!(self, Instr::Store { .. } | Instr::StoreF { .. })
    }

    /// Is this a load from memory?
    pub fn is_load(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::LoadF { .. })
    }

    /// The integer register defined by this instruction, if any.
    ///
    /// Writes to [`Reg::ZERO`] still count as a definition here; the
    /// simulator discards them but dataflow treats the slot as clobbered.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Instr::Li { rd, .. }
            | Instr::Move { rd, .. }
            | Instr::Bin { rd, .. }
            | Instr::BinImm { rd, .. }
            | Instr::CvtFI { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Alloc { rd, .. } => Some(rd),
            Instr::Call { ret, .. } => ret,
            _ => None,
        }
    }

    /// The float register defined by this instruction, if any.
    pub fn fdef(&self) -> Option<FReg> {
        match *self {
            Instr::LiF { fd, .. }
            | Instr::MoveF { fd, .. }
            | Instr::BinF { fd, .. }
            | Instr::CvtIF { fd, .. }
            | Instr::LoadF { fd, .. } => Some(fd),
            Instr::Call { fret, .. } => fret,
            _ => None,
        }
    }

    /// Integer registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Instr::Li { .. } | Instr::LiF { .. } | Instr::MoveF { .. } | Instr::BinF { .. } => {
                vec![]
            }
            Instr::Move { rs, .. } => vec![*rs],
            Instr::Bin { rs, rt, .. } => vec![*rs, *rt],
            Instr::BinImm { rs, .. } => vec![*rs],
            Instr::CvtIF { rs, .. } => vec![*rs],
            Instr::CvtFI { .. } | Instr::CmpF { .. } => vec![],
            Instr::Load { base, .. } | Instr::LoadF { base, .. } => vec![*base],
            Instr::Store { rs, base, .. } => vec![*rs, *base],
            Instr::StoreF { base, .. } => vec![*base],
            Instr::Alloc { size, .. } => vec![*size],
            Instr::Call { args, .. } => args.clone(),
        }
    }

    /// Rewrites the integer destination register, if this instruction has
    /// one. Returns `false` (and changes nothing) otherwise.
    ///
    /// Used by copy propagation: `lw $t, ...; move $q, $t` becomes
    /// `lw $q, ...` when `$t` has no other use.
    pub fn set_def(&mut self, new_rd: Reg) -> bool {
        match self {
            Instr::Li { rd, .. }
            | Instr::Move { rd, .. }
            | Instr::Bin { rd, .. }
            | Instr::BinImm { rd, .. }
            | Instr::CvtFI { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::Alloc { rd, .. } => {
                *rd = new_rd;
                true
            }
            Instr::Call { ret, .. } if ret.is_some() => {
                *ret = Some(new_rd);
                true
            }
            _ => false,
        }
    }

    /// Rewrites the float destination register, if any. Returns `false`
    /// (and changes nothing) otherwise.
    pub fn set_fdef(&mut self, new_fd: FReg) -> bool {
        match self {
            Instr::LiF { fd, .. }
            | Instr::MoveF { fd, .. }
            | Instr::BinF { fd, .. }
            | Instr::CvtIF { fd, .. }
            | Instr::LoadF { fd, .. } => {
                *fd = new_fd;
                true
            }
            Instr::Call { fret, .. } if fret.is_some() => {
                *fret = Some(new_fd);
                true
            }
            _ => false,
        }
    }

    /// Float registers read by this instruction.
    pub fn fuses(&self) -> Vec<FReg> {
        match self {
            Instr::MoveF { fs, .. } => vec![*fs],
            Instr::BinF { fs, ft, .. } => vec![*fs, *ft],
            Instr::CvtFI { fs, .. } => vec![*fs],
            Instr::CmpF { fs, ft, .. } => vec![*fs, *ft],
            Instr::StoreF { fs, .. } => vec![*fs],
            Instr::Call { fargs, .. } => fargs.clone(),
            _ => vec![],
        }
    }
}

/// The condition of a conditional branch.
///
/// The compare-against-zero forms mirror the MIPS `blez`/`bltz`/`bgez`/
/// `bgtz` opcodes that the opcode heuristic reads; `Eq`/`Ne` mirror
/// `beq`/`bne`; `FTrue`/`FFalse` mirror `bc1t`/`bc1f` and test the flag set
/// by the most recent [`Instr::CmpF`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// `rs == 0`
    Eqz(Reg),
    /// `rs != 0`
    Nez(Reg),
    /// `rs <= 0` (MIPS `blez`)
    Lez(Reg),
    /// `rs < 0` (MIPS `bltz`)
    Ltz(Reg),
    /// `rs >= 0` (MIPS `bgez`)
    Gez(Reg),
    /// `rs > 0` (MIPS `bgtz`)
    Gtz(Reg),
    /// `rs == rt` (MIPS `beq`)
    Eq(Reg, Reg),
    /// `rs != rt` (MIPS `bne`)
    Ne(Reg, Reg),
    /// floating-point condition flag is set (MIPS `bc1t`)
    FTrue,
    /// floating-point condition flag is clear (MIPS `bc1f`)
    FFalse,
}

impl Cond {
    /// Integer registers this condition reads.
    pub fn uses(&self) -> Vec<Reg> {
        match *self {
            Cond::Eqz(r)
            | Cond::Nez(r)
            | Cond::Lez(r)
            | Cond::Ltz(r)
            | Cond::Gez(r)
            | Cond::Gtz(r) => vec![r],
            Cond::Eq(a, b) | Cond::Ne(a, b) => vec![a, b],
            Cond::FTrue | Cond::FFalse => vec![],
        }
    }

    /// Does this condition read the floating-point flag?
    pub fn uses_fflag(&self) -> bool {
        matches!(self, Cond::FTrue | Cond::FFalse)
    }

    /// The same test with taken/fall-through swapped (`!cond`).
    ///
    /// # Example
    ///
    /// ```
    /// use bpfree_ir::{Cond, Reg};
    /// let r = Reg::temp(0);
    /// assert_eq!(Cond::Ltz(r).negated(), Cond::Gez(r));
    /// ```
    pub fn negated(&self) -> Cond {
        match *self {
            Cond::Eqz(r) => Cond::Nez(r),
            Cond::Nez(r) => Cond::Eqz(r),
            Cond::Lez(r) => Cond::Gtz(r),
            Cond::Ltz(r) => Cond::Gez(r),
            Cond::Gez(r) => Cond::Ltz(r),
            Cond::Gtz(r) => Cond::Lez(r),
            Cond::Eq(a, b) => Cond::Ne(a, b),
            Cond::Ne(a, b) => Cond::Eq(a, b),
            Cond::FTrue => Cond::FFalse,
            Cond::FFalse => Cond::FTrue,
        }
    }
}

/// The control-flow instruction that ends every basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way conditional branch: to `taken` if `cond` holds, else to
    /// `fallthru`. This is the branch kind the paper predicts.
    Branch {
        cond: Cond,
        taken: BlockId,
        fallthru: BlockId,
    },
    /// Procedure return with an optional integer and/or float result.
    Ret {
        val: Option<Reg>,
        fval: Option<FReg>,
    },
}

impl Terminator {
    /// Successor blocks, in `(taken, fallthru)` order for branches.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(t) => vec![*t],
            Terminator::Branch {
                taken, fallthru, ..
            } => vec![*taken, *fallthru],
            Terminator::Ret { .. } => vec![],
        }
    }

    /// Is this a conditional branch?
    pub fn is_branch(&self) -> bool {
        matches!(self, Terminator::Branch { .. })
    }

    /// Is this a return?
    pub fn is_ret(&self) -> bool {
        matches!(self, Terminator::Ret { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_use_cover_basic_instrs() {
        let r0 = Reg::temp(0);
        let r1 = Reg::temp(1);
        let i = Instr::Bin {
            op: BinOp::Add,
            rd: r0,
            rs: r1,
            rt: Reg::GP,
        };
        assert_eq!(i.def(), Some(r0));
        assert_eq!(i.uses(), vec![r1, Reg::GP]);
        assert_eq!(i.fdef(), None);
        assert!(i.fuses().is_empty());
    }

    #[test]
    fn store_has_no_def() {
        let i = Instr::Store {
            rs: Reg::temp(0),
            base: Reg::SP,
            offset: 4,
        };
        assert_eq!(i.def(), None);
        assert!(i.is_store());
        assert!(!i.is_load());
    }

    #[test]
    fn call_defs_and_uses() {
        let i = Instr::Call {
            callee: FuncId(3),
            args: vec![Reg::temp(5)],
            fargs: vec![FReg(1)],
            ret: Some(Reg::temp(6)),
            fret: None,
        };
        assert!(i.is_call());
        assert_eq!(i.def(), Some(Reg::temp(6)));
        assert_eq!(i.uses(), vec![Reg::temp(5)]);
        assert_eq!(i.fuses(), vec![FReg(1)]);
    }

    #[test]
    fn cond_negation_is_involutive() {
        let r = Reg::temp(0);
        let s = Reg::temp(1);
        let conds = [
            Cond::Eqz(r),
            Cond::Nez(r),
            Cond::Lez(r),
            Cond::Ltz(r),
            Cond::Gez(r),
            Cond::Gtz(r),
            Cond::Eq(r, s),
            Cond::Ne(r, s),
            Cond::FTrue,
            Cond::FFalse,
        ];
        for c in conds {
            assert_eq!(c.negated().negated(), c);
        }
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Cond::FTrue,
            taken: BlockId(4),
            fallthru: BlockId(5),
        };
        assert_eq!(t.successors(), vec![BlockId(4), BlockId(5)]);
        assert!(t.is_branch());
        assert!(Terminator::Ret {
            val: None,
            fval: None
        }
        .successors()
        .is_empty());
    }
}
