use std::fmt;

use crate::function::{FuncId, Function, Program};
use crate::instr::{BlockId, Instr, Terminator};
use crate::reg::{FReg, Reg};

/// Structural errors detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ValidateError {
    /// A program must contain at least one function.
    EmptyProgram,
    /// A function must contain at least one block.
    EmptyFunction { func: String },
    /// A terminator names a block outside the function.
    BadBlockTarget {
        func: String,
        block: BlockId,
        target: BlockId,
    },
    /// A conditional branch whose two successors are the same block is a
    /// degenerate branch the prediction framework cannot score.
    DegenerateBranch { func: String, block: BlockId },
    /// A call names a function id outside the program.
    BadCallee {
        func: String,
        block: BlockId,
        callee: FuncId,
    },
    /// A call passes the wrong number of arguments.
    ArityMismatch {
        func: String,
        block: BlockId,
        callee: String,
        expected: (usize, usize),
        got: (usize, usize),
    },
    /// An instruction names an integer register beyond the declared count.
    BadReg {
        func: String,
        block: BlockId,
        reg: Reg,
    },
    /// An instruction names a float register beyond the declared count.
    BadFReg {
        func: String,
        block: BlockId,
        reg: FReg,
    },
    /// A named global lies outside the global region.
    GlobalOutOfRange {
        name: String,
        offset: i64,
        len: i64,
        globals_words: i64,
    },
    /// A negative stack frame size.
    NegativeFrame { func: String, frame_words: i64 },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::EmptyProgram => write!(f, "program has no functions"),
            ValidateError::EmptyFunction { func } => {
                write!(f, "function `{func}` has no blocks")
            }
            ValidateError::BadBlockTarget {
                func,
                block,
                target,
            } => {
                write!(
                    f,
                    "function `{func}`: block {block} targets nonexistent {target}"
                )
            }
            ValidateError::DegenerateBranch { func, block } => {
                write!(
                    f,
                    "function `{func}`: block {block} branches to one target twice"
                )
            }
            ValidateError::BadCallee {
                func,
                block,
                callee,
            } => {
                write!(
                    f,
                    "function `{func}`: block {block} calls nonexistent {callee}"
                )
            }
            ValidateError::ArityMismatch {
                func,
                block,
                callee,
                expected,
                got,
            } => write!(
                f,
                "function `{func}`: block {block} calls `{callee}` with {}+{} args, expected {}+{}",
                got.0, got.1, expected.0, expected.1
            ),
            ValidateError::BadReg { func, block, reg } => {
                write!(
                    f,
                    "function `{func}`: block {block} uses undeclared register {reg}"
                )
            }
            ValidateError::BadFReg { func, block, reg } => {
                write!(
                    f,
                    "function `{func}`: block {block} uses undeclared register {reg}"
                )
            }
            ValidateError::GlobalOutOfRange {
                name,
                offset,
                len,
                globals_words,
            } => write!(
                f,
                "global `{name}` at [{offset}, {}) exceeds the {globals_words}-word region",
                offset + len
            ),
            ValidateError::NegativeFrame { func, frame_words } => {
                write!(f, "function `{func}` has negative frame size {frame_words}")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl Program {
    /// Checks structural well-formedness: block targets in range, callees
    /// exist with matching arity, register indices within the declared
    /// counts, no degenerate branches, no negative frames.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.funcs().is_empty() {
            return Err(ValidateError::EmptyProgram);
        }
        for func in self.funcs() {
            self.validate_function(func)?;
        }
        Ok(())
    }

    fn validate_function(&self, func: &Function) -> Result<(), ValidateError> {
        let name = func.name().to_string();
        if func.blocks().is_empty() {
            return Err(ValidateError::EmptyFunction { func: name });
        }
        if func.frame_words() < 0 {
            return Err(ValidateError::NegativeFrame {
                func: name,
                frame_words: func.frame_words(),
            });
        }
        let n_blocks = func.blocks().len() as u32;
        for bid in func.block_ids() {
            let block = func.block(bid);
            for instr in &block.instrs {
                self.validate_instr(func, bid, instr)?;
            }
            match &block.term {
                Terminator::Jump(t) => {
                    if t.0 >= n_blocks {
                        return Err(ValidateError::BadBlockTarget {
                            func: func.name().into(),
                            block: bid,
                            target: *t,
                        });
                    }
                }
                Terminator::Branch {
                    cond,
                    taken,
                    fallthru,
                } => {
                    for t in [taken, fallthru] {
                        if t.0 >= n_blocks {
                            return Err(ValidateError::BadBlockTarget {
                                func: func.name().into(),
                                block: bid,
                                target: *t,
                            });
                        }
                    }
                    if taken == fallthru {
                        return Err(ValidateError::DegenerateBranch {
                            func: func.name().into(),
                            block: bid,
                        });
                    }
                    for r in cond.uses() {
                        check_reg(func, bid, r)?;
                    }
                }
                Terminator::Ret { val, fval } => {
                    if let Some(r) = val {
                        check_reg(func, bid, *r)?;
                    }
                    if let Some(r) = fval {
                        check_freg(func, bid, *r)?;
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_instr(
        &self,
        func: &Function,
        bid: BlockId,
        instr: &Instr,
    ) -> Result<(), ValidateError> {
        for r in instr.uses().into_iter().chain(instr.def()) {
            check_reg(func, bid, r)?;
        }
        for r in instr.fuses().into_iter().chain(instr.fdef()) {
            check_freg(func, bid, r)?;
        }
        if let Instr::Call {
            callee,
            args,
            fargs,
            ..
        } = instr
        {
            if callee.0 as usize >= self.funcs().len() {
                return Err(ValidateError::BadCallee {
                    func: func.name().into(),
                    block: bid,
                    callee: *callee,
                });
            }
            let target = self.func(*callee);
            let expected = (target.params().len(), target.fparams().len());
            let got = (args.len(), fargs.len());
            if expected != got {
                return Err(ValidateError::ArityMismatch {
                    func: func.name().into(),
                    block: bid,
                    callee: target.name().into(),
                    expected,
                    got,
                });
            }
        }
        Ok(())
    }
}

fn check_reg(func: &Function, bid: BlockId, r: Reg) -> Result<(), ValidateError> {
    if r.0 >= func.n_regs() && !r.is_special() {
        return Err(ValidateError::BadReg {
            func: func.name().into(),
            block: bid,
            reg: r,
        });
    }
    Ok(())
}

fn check_freg(func: &Function, bid: BlockId, r: FReg) -> Result<(), ValidateError> {
    if r.0 >= func.n_fregs() {
        return Err(ValidateError::BadFReg {
            func: func.name().into(),
            block: bid,
            reg: r,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::Cond;

    fn ret() -> Terminator {
        Terminator::Ret {
            val: None,
            fval: None,
        }
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(
            Program::new(vec![], 0).unwrap_err(),
            ValidateError::EmptyProgram
        );
    }

    #[test]
    fn bad_jump_target_rejected() {
        let mut b = FunctionBuilder::new("main");
        let e = b.entry();
        b.set_term(e, Terminator::Jump(BlockId(9)));
        let err = Program::new(vec![b.finish().unwrap()], 0).unwrap_err();
        assert!(matches!(err, ValidateError::BadBlockTarget { .. }));
    }

    #[test]
    fn degenerate_branch_rejected() {
        let mut b = FunctionBuilder::new("main");
        let e = b.entry();
        let t = b.new_block();
        let r = b.new_reg();
        b.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Nez(r),
                taken: t,
                fallthru: t,
            },
        );
        b.set_term(t, ret());
        let err = Program::new(vec![b.finish().unwrap()], 0).unwrap_err();
        assert!(matches!(err, ValidateError::DegenerateBranch { .. }));
    }

    #[test]
    fn bad_callee_rejected() {
        let mut b = FunctionBuilder::new("main");
        let e = b.entry();
        b.push(
            e,
            Instr::Call {
                callee: FuncId(7),
                args: vec![],
                fargs: vec![],
                ret: None,
                fret: None,
            },
        );
        b.set_term(e, ret());
        let err = Program::new(vec![b.finish().unwrap()], 0).unwrap_err();
        assert!(matches!(err, ValidateError::BadCallee { .. }));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut callee = FunctionBuilder::new("callee");
        let _p = callee.add_param();
        let e = callee.entry();
        callee.set_term(e, ret());

        let mut b = FunctionBuilder::new("main");
        let e = b.entry();
        b.push(
            e,
            Instr::Call {
                callee: FuncId(1),
                args: vec![],
                fargs: vec![],
                ret: None,
                fret: None,
            },
        );
        b.set_term(e, ret());
        let err = Program::new(vec![b.finish().unwrap(), callee.finish().unwrap()], 0).unwrap_err();
        assert!(matches!(err, ValidateError::ArityMismatch { .. }));
    }

    #[test]
    fn undeclared_register_rejected() {
        let mut b = FunctionBuilder::new("main");
        let e = b.entry();
        b.push(
            e,
            Instr::Move {
                rd: Reg(100),
                rs: Reg::ZERO,
            },
        );
        b.set_term(e, ret());
        let err = Program::new(vec![b.finish().unwrap()], 0).unwrap_err();
        assert!(matches!(err, ValidateError::BadReg { .. }));
    }

    #[test]
    fn special_registers_always_allowed() {
        let mut b = FunctionBuilder::new("main");
        let e = b.entry();
        let r = b.new_reg();
        b.push(
            e,
            Instr::Load {
                rd: r,
                base: Reg::GP,
                offset: 0,
            },
        );
        b.push(
            e,
            Instr::Store {
                rs: r,
                base: Reg::SP,
                offset: 0,
            },
        );
        b.set_term(e, ret());
        assert!(Program::new(vec![b.finish().unwrap()], 4).is_ok());
    }

    #[test]
    fn negative_frame_rejected() {
        let mut b = FunctionBuilder::new("main");
        let e = b.entry();
        b.reserve_frame(-4);
        b.set_term(e, ret());
        let err = Program::new(vec![b.finish().unwrap()], 0).unwrap_err();
        assert!(matches!(err, ValidateError::NegativeFrame { .. }));
    }

    #[test]
    fn error_messages_are_descriptive() {
        let err = ValidateError::BadBlockTarget {
            func: "f".into(),
            block: BlockId(1),
            target: BlockId(9),
        };
        let msg = err.to_string();
        assert!(msg.contains("f") && msg.contains("L1") && msg.contains("L9"));
    }
}
