use std::fmt;

use crate::function::Function;
use crate::instr::{BlockId, Instr, Terminator};
use crate::reg::{FReg, Reg};

/// Error produced by [`FunctionBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A block was created but never given a terminator.
    UnterminatedBlock { func: String, block: BlockId },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnterminatedBlock { func, block } => {
                write!(f, "function `{func}`: block {block} has no terminator")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally constructs a [`Function`].
///
/// The builder hands out fresh virtual registers and blocks; the entry
/// block (id 0) exists from the start. Every block must receive exactly one
/// terminator via [`FunctionBuilder::set_term`] before [`finish`] succeeds.
///
/// [`finish`]: FunctionBuilder::finish
///
/// # Example
///
/// ```
/// use bpfree_ir::{FunctionBuilder, Instr, Terminator, Cond};
///
/// let mut b = FunctionBuilder::new("abs");
/// let x = b.add_param();
/// let entry = b.entry();
/// let neg = b.new_block();
/// let pos = b.new_block();
/// b.set_term(entry, Terminator::Branch { cond: Cond::Ltz(x), taken: neg, fallthru: pos });
/// let r = b.new_reg();
/// b.push(neg, Instr::Bin { op: bpfree_ir::BinOp::Sub, rd: r, rs: bpfree_ir::Reg::ZERO, rt: x });
/// b.set_term(neg, Terminator::Ret { val: Some(r), fval: None });
/// b.set_term(pos, Terminator::Ret { val: Some(x), fval: None });
/// let f = b.finish().unwrap();
/// assert_eq!(f.blocks().len(), 3);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    blocks: Vec<(Vec<Instr>, Option<Terminator>)>,
    params: Vec<Reg>,
    fparams: Vec<FReg>,
    next_reg: u32,
    next_freg: u32,
    frame_words: i64,
}

impl FunctionBuilder {
    /// Starts a new function with an empty entry block.
    pub fn new(name: impl Into<String>) -> FunctionBuilder {
        FunctionBuilder {
            name: name.into(),
            blocks: vec![(Vec::new(), None)],
            params: Vec::new(),
            fparams: Vec::new(),
            next_reg: Reg::FIRST_TEMP,
            next_freg: 0,
            frame_words: 0,
        }
    }

    /// The entry block id (always 0).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Allocates a fresh integer register.
    pub fn new_reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Allocates a fresh float register.
    pub fn new_freg(&mut self) -> FReg {
        let r = FReg(self.next_freg);
        self.next_freg += 1;
        r
    }

    /// Allocates a fresh register and declares it an integer parameter.
    /// Parameters receive argument values in declaration order.
    pub fn add_param(&mut self) -> Reg {
        let r = self.new_reg();
        self.params.push(r);
        r
    }

    /// Allocates a fresh float register and declares it a float parameter.
    pub fn add_fparam(&mut self) -> FReg {
        let r = self.new_freg();
        self.fparams.push(r);
        r
    }

    /// Creates a new empty, unterminated block.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push((Vec::new(), None));
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Appends an instruction to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range or already terminated.
    pub fn push(&mut self, block: BlockId, instr: Instr) {
        let slot = &mut self.blocks[block.index()];
        assert!(slot.1.is_none(), "pushing into terminated block {block}");
        slot.0.push(instr);
    }

    /// Sets (or replaces) the terminator of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn set_term(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.index()].1 = Some(term);
    }

    /// Returns `true` if `block` already has a terminator.
    pub fn is_terminated(&self, block: BlockId) -> bool {
        self.blocks[block.index()].1.is_some()
    }

    /// Reserves `words` of stack frame and returns the `SP`-relative word
    /// offset of the reservation.
    pub fn reserve_frame(&mut self, words: i64) -> i64 {
        let off = self.frame_words;
        self.frame_words += words;
        off
    }

    /// Number of blocks created so far.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of integer registers allocated so far (specials included).
    pub fn reg_count(&self) -> u32 {
        self.next_reg
    }

    /// Number of float registers allocated so far.
    pub fn freg_count(&self) -> u32 {
        self.next_freg
    }

    /// Produces the finished [`Function`].
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::UnterminatedBlock`] if any block never
    /// received a terminator.
    pub fn finish(self) -> Result<Function, BuildError> {
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (i, (instrs, term)) in self.blocks.into_iter().enumerate() {
            match term {
                Some(term) => blocks.push(crate::function::Block { instrs, term }),
                None => {
                    return Err(BuildError::UnterminatedBlock {
                        func: self.name,
                        block: BlockId(i as u32),
                    })
                }
            }
        }
        Ok(Function::from_parts(
            self.name,
            blocks,
            self.params,
            self.fparams,
            self.next_reg,
            self.next_freg,
            self.frame_words,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Cond;

    #[test]
    fn unterminated_block_is_an_error() {
        let mut b = FunctionBuilder::new("f");
        let _ = b.new_block();
        b.set_term(
            b.entry(),
            Terminator::Ret {
                val: None,
                fval: None,
            },
        );
        let err = b.finish().unwrap_err();
        assert_eq!(
            err,
            BuildError::UnterminatedBlock {
                func: "f".into(),
                block: BlockId(1)
            }
        );
        assert!(err.to_string().contains("L1"));
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn push_after_terminate_panics() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        b.set_term(
            e,
            Terminator::Ret {
                val: None,
                fval: None,
            },
        );
        b.push(
            e,
            Instr::Li {
                rd: Reg::temp(0),
                imm: 0,
            },
        );
    }

    #[test]
    fn params_allocate_fresh_registers() {
        let mut b = FunctionBuilder::new("f");
        let p0 = b.add_param();
        let p1 = b.add_param();
        let fp = b.add_fparam();
        assert_ne!(p0, p1);
        assert_eq!(fp, FReg(0));
        let e = b.entry();
        b.set_term(
            e,
            Terminator::Ret {
                val: None,
                fval: None,
            },
        );
        let f = b.finish().unwrap();
        assert_eq!(f.params(), &[p0, p1]);
        assert_eq!(f.fparams(), &[fp]);
    }

    #[test]
    fn frame_reservations_accumulate() {
        let mut b = FunctionBuilder::new("f");
        assert_eq!(b.reserve_frame(10), 0);
        assert_eq!(b.reserve_frame(5), 10);
        let e = b.entry();
        b.set_term(
            e,
            Terminator::Ret {
                val: None,
                fval: None,
            },
        );
        assert_eq!(b.finish().unwrap().frame_words(), 15);
    }

    #[test]
    fn diamond_builds() {
        let mut b = FunctionBuilder::new("f");
        let e = b.entry();
        let l = b.new_block();
        let r = b.new_block();
        let j = b.new_block();
        let c = b.new_reg();
        b.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Nez(c),
                taken: l,
                fallthru: r,
            },
        );
        b.set_term(l, Terminator::Jump(j));
        b.set_term(r, Terminator::Jump(j));
        b.set_term(
            j,
            Terminator::Ret {
                val: None,
                fval: None,
            },
        );
        let f = b.finish().unwrap();
        assert_eq!(f.blocks().len(), 4);
        assert_eq!(f.block(BlockId(0)).term.successors(), vec![l, r]);
    }
}
