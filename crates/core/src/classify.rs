use std::sync::OnceLock;

use bpfree_cfg::FunctionAnalysis;
use bpfree_ir::{BlockId, BranchId, BranchRef, BranchTable, FuncId, Program, Terminator};

use crate::predictors::Direction;

/// The paper's branch taxonomy (Section 3).
///
/// * a branch is a **loop branch** if either of its outgoing edges is a
///   loop exit edge or a loop backedge;
/// * a branch is a **non-loop branch** if neither outgoing edge is an
///   exit edge or a backedge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchClass {
    /// A branch with a backedge or loop-exit outgoing edge.
    Loop,
    /// Any other conditional branch.
    NonLoop,
}

/// Whole-program branch classification on dense [`BranchId`] storage.
///
/// Classifies every branch site and computes the loop predictor's
/// choice for each loop branch: *"if either of the outgoing edges is a
/// backedge, it is predicted. Otherwise, the non-exit edge is
/// predicted"* — loops iterate many times and exit once. Results live
/// in `Vec`s indexed by [`BranchId`] (the program-order branch
/// enumeration), so queries are index lookups and iteration is
/// deterministic.
///
/// Per-function control-flow analyses are computed lazily: a classifier
/// rebuilt from cached classification rows (see
/// [`BranchClassifier::from_cached`]) performs no CFG analysis at all
/// until [`BranchClassifier::analysis`] is asked for one.
///
/// # Example
///
/// ```
/// use bpfree_core::{BranchClass, BranchClassifier};
/// let p = bpfree_lang::compile(
///     "fn main() -> int {
///         int i;
///         while (i < 10) { i = i + 1; }
///         return i;
///     }",
/// ).unwrap();
/// let c = BranchClassifier::analyze(&p);
/// let branches = p.branches();
/// // Rotation yields one non-loop guard and one loop latch.
/// let loops = branches.iter().filter(|b| c.class(**b) == BranchClass::Loop).count();
/// assert_eq!(loops, 1);
/// assert_eq!(branches.len() - loops, 1);
/// ```
#[derive(Debug)]
pub struct BranchClassifier {
    /// Lazily-filled per-function analyses, index = [`FuncId`].
    analyses: Vec<OnceLock<FunctionAnalysis>>,
    /// The program's `BranchRef ⇄ BranchId` side table.
    branches: BranchTable,
    /// Branch class, indexed by [`BranchId`].
    class: Vec<BranchClass>,
    /// Loop predictor choice (`None` for non-loop), indexed by
    /// [`BranchId`].
    loop_pred: Vec<Option<Direction>>,
}

fn analysis_of<'a>(
    slots: &'a [OnceLock<FunctionAnalysis>],
    program: &Program,
    func: FuncId,
) -> &'a FunctionAnalysis {
    slots[func.index()].get_or_init(|| FunctionAnalysis::new(program.func(func)))
}

impl BranchClassifier {
    /// Analyzes `program` and classifies every branch, in program order.
    pub fn analyze(program: &Program) -> BranchClassifier {
        let branches = BranchTable::build(program);
        let analyses: Vec<OnceLock<FunctionAnalysis>> = (0..program.funcs().len())
            .map(|_| OnceLock::new())
            .collect();
        let mut class = Vec::with_capacity(branches.len());
        let mut loop_pred = Vec::with_capacity(branches.len());
        for &b in branches.refs() {
            let Terminator::Branch {
                taken, fallthru, ..
            } = program.func(b.func).block(b.block).term
            else {
                unreachable!("branch table holds only branch sites")
            };
            let a = analysis_of(&analyses, program, b.func);
            let (c, p) = classify_branch(a, b.block, taken, fallthru);
            class.push(c);
            loop_pred.push(p);
        }
        BranchClassifier {
            analyses,
            branches,
            class,
            loop_pred,
        }
    }

    /// Rebuilds a classifier from cached classification rows without
    /// re-running any control-flow analysis. Returns `None` if the rows
    /// don't exactly match `program`'s branch enumeration (a stale or
    /// corrupt cache entry).
    pub fn from_cached(
        program: &Program,
        rows: &[(BranchRef, BranchClass, Option<Direction>)],
    ) -> Option<BranchClassifier> {
        let branches = BranchTable::build(program);
        if rows.len() != branches.len() {
            return None;
        }
        let mut class = Vec::with_capacity(rows.len());
        let mut loop_pred = Vec::with_capacity(rows.len());
        for (&expect, &(got, c, p)) in branches.refs().iter().zip(rows) {
            if got != expect {
                return None;
            }
            // Loop predictions exist exactly for loop branches.
            if (c == BranchClass::Loop) != p.is_some() {
                return None;
            }
            class.push(c);
            loop_pred.push(p);
        }
        Some(BranchClassifier {
            analyses: (0..program.funcs().len())
                .map(|_| OnceLock::new())
                .collect(),
            branches,
            class,
            loop_pred,
        })
    }

    /// The dense id of `branch`.
    ///
    /// # Panics
    ///
    /// Panics if `branch` does not name a conditional branch of the
    /// analyzed program.
    fn id(&self, branch: BranchRef) -> BranchId {
        self.branches
            .id_of(branch)
            .unwrap_or_else(|| panic!("{branch} is not a branch site of this program"))
    }

    /// The class of a branch site.
    ///
    /// # Panics
    ///
    /// Panics if `branch` does not name a conditional branch of the
    /// analyzed program.
    pub fn class(&self, branch: BranchRef) -> BranchClass {
        self.class_by_id(self.id(branch))
    }

    /// The class of a branch site, by dense id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn class_by_id(&self, id: BranchId) -> BranchClass {
        self.class[id.index()]
    }

    /// The loop predictor's choice, for loop branches (`None` for
    /// non-loop branches).
    ///
    /// # Panics
    ///
    /// Panics if `branch` does not name a conditional branch of the
    /// analyzed program.
    pub fn loop_prediction(&self, branch: BranchRef) -> Option<Direction> {
        self.loop_pred[self.id(branch).index()]
    }

    /// [`BranchClassifier::loop_prediction`] by dense id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn loop_prediction_by_id(&self, id: BranchId) -> Option<Direction> {
        self.loop_pred[id.index()]
    }

    /// The program's `BranchRef ⇄ BranchId` side table.
    pub fn branch_table(&self) -> &BranchTable {
        &self.branches
    }

    /// The control-flow analysis for one function, computed on first
    /// use (`program` must be the program this classifier was built
    /// for).
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn analysis(&self, program: &Program, func: FuncId) -> &FunctionAnalysis {
        analysis_of(&self.analyses, program, func)
    }

    /// Iterator over all classified branch sites, in program order.
    pub fn branches(&self) -> impl Iterator<Item = (BranchRef, BranchClass)> + '_ {
        self.branches
            .refs()
            .iter()
            .zip(&self.class)
            .map(|(&b, &c)| (b, c))
    }

    /// Iterator over the full classification rows in program order —
    /// what the cache persists.
    pub fn rows(&self) -> impl Iterator<Item = (BranchRef, BranchClass, Option<Direction>)> + '_ {
        self.branches
            .refs()
            .iter()
            .zip(self.class.iter().zip(&self.loop_pred))
            .map(|(&b, (&c, &p))| (b, c, p))
    }

    /// Is the taken edge of `branch` a backedge? (Diagnostics and the
    /// BTFNT comparison use this.)
    pub fn taken_is_backedge(&self, branch: BranchRef, program: &Program) -> bool {
        let Terminator::Branch { taken, .. } = program.func(branch.func).block(branch.block).term
        else {
            return false;
        };
        self.analysis(program, branch.func)
            .loops
            .is_backedge(branch.block, taken)
    }
}

/// Classifies one branch from its function's loop analysis, returning
/// the class and the loop predictor's choice (`None` for non-loop).
pub(crate) fn classify_branch(
    a: &FunctionAnalysis,
    block: BlockId,
    taken: BlockId,
    fallthru: BlockId,
) -> (BranchClass, Option<Direction>) {
    let taken_back = a.loops.is_backedge(block, taken);
    let fall_back = a.loops.is_backedge(block, fallthru);
    let taken_exit = a.loops.is_exit_edge(block, taken);
    let fall_exit = a.loops.is_exit_edge(block, fallthru);

    if !taken_back && !fall_back && !taken_exit && !fall_exit {
        return (BranchClass::NonLoop, None);
    }

    // Loop branch. Predict a backedge if one exists; otherwise the
    // non-exit edge; if both edges exit (distinct loops), prefer the edge
    // into the deeper loop — the paper's footnote 1 tie-break, adapted.
    let prediction = if taken_back && fall_back {
        // Never occurred in the paper's benchmarks; prefer the edge whose
        // target sits in the innermost (deepest) loop.
        if a.loops.depth(taken) >= a.loops.depth(fallthru) {
            Direction::Taken
        } else {
            Direction::FallThru
        }
    } else if taken_back {
        Direction::Taken
    } else if fall_back || (taken_exit && !fall_exit) {
        // Either the fall-through IS the backedge, or the taken edge
        // leaves the loop: stay in the loop via the fall-through.
        Direction::FallThru
    } else if fall_exit && !taken_exit {
        Direction::Taken
    } else {
        // Both edges are exit edges: stay in the deeper loop.
        if a.loops.depth(taken) >= a.loops.depth(fallthru) {
            Direction::Taken
        } else {
            Direction::FallThru
        }
    };
    (BranchClass::Loop, Some(prediction))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_lang::compile;

    fn classify(src: &str) -> (bpfree_ir::Program, BranchClassifier) {
        let p = compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let c = BranchClassifier::analyze(&p);
        (p, c)
    }

    #[test]
    fn rotated_while_has_loop_latch_and_nonloop_guard() {
        let (p, c) = classify(
            "fn main() -> int {
                int i;
                while (i < 10) { i = i + 1; }
                return i;
            }",
        );
        let branches = p.branches();
        assert_eq!(branches.len(), 2);
        let classes: Vec<BranchClass> = branches.iter().map(|b| c.class(*b)).collect();
        assert!(classes.contains(&BranchClass::Loop));
        assert!(classes.contains(&BranchClass::NonLoop));
    }

    #[test]
    fn latch_predicts_backedge() {
        let (p, c) = classify(
            "fn main() -> int {
                int i;
                do { i = i + 1; } while (i < 10);
                return i;
            }",
        );
        let branches = p.branches();
        assert_eq!(branches.len(), 1);
        let br = branches[0];
        assert_eq!(c.class(br), BranchClass::Loop);
        // Latch branches back on true: the backedge is the taken edge.
        assert_eq!(c.loop_prediction(br), Some(Direction::Taken));
        assert!(c.taken_is_backedge(br, &p));
    }

    #[test]
    fn break_branch_is_a_loop_branch_predicting_non_exit() {
        let (p, c) = classify(
            "fn main() -> int {
                int i;
                do {
                    i = i + 1;
                    if (i == 1000000) { break; }
                } while (i < 10);
                return i;
            }",
        );
        // The `if (...) break` branch has an exit edge: it is a loop
        // branch and the loop predictor chooses the stay-in-loop side.
        let mut found_break = false;
        for br in p.branches() {
            if c.class(br) == BranchClass::Loop && !c.taken_is_backedge(br, &p) {
                // This is the break test: taken leaves the loop
                // (branch-over polarity put `break` on... check direction).
                found_break = true;
                assert!(c.loop_prediction(br).is_some());
            }
        }
        assert!(found_break);
    }

    #[test]
    fn plain_if_is_nonloop() {
        let (p, c) = classify(
            "fn main() -> int {
                int x;
                x = 5;
                if (x > 3) { x = 0; }
                return x;
            }",
        );
        let branches = p.branches();
        assert_eq!(branches.len(), 1);
        assert_eq!(c.class(branches[0]), BranchClass::NonLoop);
        assert_eq!(c.loop_prediction(branches[0]), None);
    }

    #[test]
    fn if_inside_loop_is_nonloop() {
        let (p, c) = classify(
            "fn main() -> int {
                int i; int s;
                for (i = 0; i < 10; i = i + 1) {
                    if (i % 2 == 0) { s = s + 1; }
                }
                return s;
            }",
        );
        let nonloop = p
            .branches()
            .iter()
            .filter(|b| c.class(**b) == BranchClass::NonLoop)
            .count();
        // The guard and the mod test are non-loop; the latch is a loop
        // branch.
        assert_eq!(nonloop, 2);
    }

    #[test]
    fn nested_loop_inner_latch_predicts_iteration() {
        let (p, c) = classify(
            "fn main() -> int {
                int i; int j; int s;
                for (i = 0; i < 4; i = i + 1) {
                    for (j = 0; j < 4; j = j + 1) { s = s + 1; }
                }
                return s;
            }",
        );
        let loop_branches: Vec<_> = p
            .branches()
            .into_iter()
            .filter(|b| c.class(*b) == BranchClass::Loop)
            .collect();
        assert_eq!(loop_branches.len(), 2);
        for br in loop_branches {
            assert_eq!(c.loop_prediction(br), Some(Direction::Taken));
        }
    }

    #[test]
    fn branches_iterate_in_program_order() {
        let (p, c) = classify(
            "fn helper(int x) -> int {
                if (x > 0) { return 1; }
                return 0;
            }
            fn main() -> int {
                int i; int s;
                for (i = 0; i < 4; i = i + 1) { s = s + helper(i); }
                return s;
            }",
        );
        let order: Vec<BranchRef> = c.branches().map(|(b, _)| b).collect();
        assert_eq!(order, p.branches(), "dense iteration is program order");
    }

    #[test]
    fn cached_rows_round_trip_without_reanalysis() {
        let (p, c) = classify(
            "fn main() -> int {
                int i; int s;
                for (i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { s = s + 1; } }
                return s;
            }",
        );
        let rows: Vec<_> = c.rows().collect();
        let rebuilt = BranchClassifier::from_cached(&p, &rows).expect("rows match");
        for b in p.branches() {
            assert_eq!(rebuilt.class(b), c.class(b));
            assert_eq!(rebuilt.loop_prediction(b), c.loop_prediction(b));
        }
        // Mismatched rows are rejected, not mis-assigned.
        let mut bad = rows.clone();
        bad.swap_remove(0);
        assert!(BranchClassifier::from_cached(&p, &bad).is_none());
        let mut flipped = rows.clone();
        flipped[0].1 = match flipped[0].1 {
            BranchClass::Loop => BranchClass::NonLoop,
            BranchClass::NonLoop => BranchClass::Loop,
        };
        assert!(BranchClassifier::from_cached(&p, &flipped).is_none());
    }
}
