use std::collections::HashMap;

use bpfree_cfg::FunctionAnalysis;
use bpfree_ir::{BlockId, BranchRef, FuncId, Program, Terminator};

use crate::predictors::Direction;

/// The paper's branch taxonomy (Section 3).
///
/// * a branch is a **loop branch** if either of its outgoing edges is a
///   loop exit edge or a loop backedge;
/// * a branch is a **non-loop branch** if neither outgoing edge is an
///   exit edge or a backedge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchClass {
    Loop,
    NonLoop,
}

/// Whole-program control-flow analysis plus branch classification.
///
/// Runs [`FunctionAnalysis`] on every function, classifies every branch
/// site, and computes the loop predictor's choice for each loop branch:
/// *"if either of the outgoing edges is a backedge, it is predicted.
/// Otherwise, the non-exit edge is predicted"* — loops iterate many times
/// and exit once.
///
/// # Example
///
/// ```
/// use bpfree_core::{BranchClass, BranchClassifier};
/// let p = bpfree_lang::compile(
///     "fn main() -> int {
///         int i;
///         while (i < 10) { i = i + 1; }
///         return i;
///     }",
/// ).unwrap();
/// let c = BranchClassifier::analyze(&p);
/// let branches = p.branches();
/// // Rotation yields one non-loop guard and one loop latch.
/// let loops = branches.iter().filter(|b| c.class(**b) == BranchClass::Loop).count();
/// assert_eq!(loops, 1);
/// assert_eq!(branches.len() - loops, 1);
/// ```
#[derive(Debug)]
pub struct BranchClassifier {
    analyses: Vec<FunctionAnalysis>,
    info: HashMap<BranchRef, BranchSite>,
}

#[derive(Debug, Clone, Copy)]
struct BranchSite {
    class: BranchClass,
    loop_prediction: Option<Direction>,
}

impl BranchClassifier {
    /// Analyzes every function of `program` and classifies every branch.
    pub fn analyze(program: &Program) -> BranchClassifier {
        let analyses: Vec<FunctionAnalysis> =
            program.funcs().iter().map(FunctionAnalysis::new).collect();
        let mut info = HashMap::new();
        for fid in program.func_ids() {
            let func = program.func(fid);
            let a = &analyses[fid.index()];
            for bid in func.block_ids() {
                let Terminator::Branch {
                    taken, fallthru, ..
                } = func.block(bid).term
                else {
                    continue;
                };
                let site = classify_branch(a, bid, taken, fallthru);
                info.insert(
                    BranchRef {
                        func: fid,
                        block: bid,
                    },
                    site,
                );
            }
        }
        BranchClassifier { analyses, info }
    }

    /// The class of a branch site.
    ///
    /// # Panics
    ///
    /// Panics if `branch` does not name a conditional branch of the
    /// analyzed program.
    pub fn class(&self, branch: BranchRef) -> BranchClass {
        self.info[&branch].class
    }

    /// The loop predictor's choice, for loop branches (`None` for
    /// non-loop branches).
    ///
    /// # Panics
    ///
    /// Panics if `branch` does not name a conditional branch of the
    /// analyzed program.
    pub fn loop_prediction(&self, branch: BranchRef) -> Option<Direction> {
        self.info[&branch].loop_prediction
    }

    /// The control-flow analysis for one function.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn analysis(&self, func: FuncId) -> &FunctionAnalysis {
        &self.analyses[func.index()]
    }

    /// Iterator over all classified branch sites.
    pub fn branches(&self) -> impl Iterator<Item = (BranchRef, BranchClass)> + '_ {
        self.info.iter().map(|(&b, s)| (b, s.class))
    }

    /// Is the taken edge of `branch` a backedge? (Diagnostics and the
    /// BTFNT comparison use this.)
    pub fn taken_is_backedge(&self, branch: BranchRef, program: &Program) -> bool {
        let Terminator::Branch { taken, .. } = program.func(branch.func).block(branch.block).term
        else {
            return false;
        };
        self.analyses[branch.func.index()]
            .loops
            .is_backedge(branch.block, taken)
    }
}

fn classify_branch(
    a: &FunctionAnalysis,
    block: BlockId,
    taken: BlockId,
    fallthru: BlockId,
) -> BranchSite {
    let taken_back = a.loops.is_backedge(block, taken);
    let fall_back = a.loops.is_backedge(block, fallthru);
    let taken_exit = a.loops.is_exit_edge(block, taken);
    let fall_exit = a.loops.is_exit_edge(block, fallthru);

    if !taken_back && !fall_back && !taken_exit && !fall_exit {
        return BranchSite {
            class: BranchClass::NonLoop,
            loop_prediction: None,
        };
    }

    // Loop branch. Predict a backedge if one exists; otherwise the
    // non-exit edge; if both edges exit (distinct loops), prefer the edge
    // into the deeper loop — the paper's footnote 1 tie-break, adapted.
    let prediction = if taken_back && fall_back {
        // Never occurred in the paper's benchmarks; prefer the edge whose
        // target sits in the innermost (deepest) loop.
        if a.loops.depth(taken) >= a.loops.depth(fallthru) {
            Direction::Taken
        } else {
            Direction::FallThru
        }
    } else if taken_back {
        Direction::Taken
    } else if fall_back || (taken_exit && !fall_exit) {
        // Either the fall-through IS the backedge, or the taken edge
        // leaves the loop: stay in the loop via the fall-through.
        Direction::FallThru
    } else if fall_exit && !taken_exit {
        Direction::Taken
    } else {
        // Both edges are exit edges: stay in the deeper loop.
        if a.loops.depth(taken) >= a.loops.depth(fallthru) {
            Direction::Taken
        } else {
            Direction::FallThru
        }
    };
    BranchSite {
        class: BranchClass::Loop,
        loop_prediction: Some(prediction),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_lang::compile;

    fn classify(src: &str) -> (bpfree_ir::Program, BranchClassifier) {
        let p = compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let c = BranchClassifier::analyze(&p);
        (p, c)
    }

    #[test]
    fn rotated_while_has_loop_latch_and_nonloop_guard() {
        let (p, c) = classify(
            "fn main() -> int {
                int i;
                while (i < 10) { i = i + 1; }
                return i;
            }",
        );
        let branches = p.branches();
        assert_eq!(branches.len(), 2);
        let classes: Vec<BranchClass> = branches.iter().map(|b| c.class(*b)).collect();
        assert!(classes.contains(&BranchClass::Loop));
        assert!(classes.contains(&BranchClass::NonLoop));
    }

    #[test]
    fn latch_predicts_backedge() {
        let (p, c) = classify(
            "fn main() -> int {
                int i;
                do { i = i + 1; } while (i < 10);
                return i;
            }",
        );
        let branches = p.branches();
        assert_eq!(branches.len(), 1);
        let br = branches[0];
        assert_eq!(c.class(br), BranchClass::Loop);
        // Latch branches back on true: the backedge is the taken edge.
        assert_eq!(c.loop_prediction(br), Some(Direction::Taken));
        assert!(c.taken_is_backedge(br, &p));
    }

    #[test]
    fn break_branch_is_a_loop_branch_predicting_non_exit() {
        let (p, c) = classify(
            "fn main() -> int {
                int i;
                do {
                    i = i + 1;
                    if (i == 1000000) { break; }
                } while (i < 10);
                return i;
            }",
        );
        // The `if (...) break` branch has an exit edge: it is a loop
        // branch and the loop predictor chooses the stay-in-loop side.
        let mut found_break = false;
        for br in p.branches() {
            if c.class(br) == BranchClass::Loop && !c.taken_is_backedge(br, &p) {
                // This is the break test: taken leaves the loop
                // (branch-over polarity put `break` on... check direction).
                found_break = true;
                assert!(c.loop_prediction(br).is_some());
            }
        }
        assert!(found_break);
    }

    #[test]
    fn plain_if_is_nonloop() {
        let (p, c) = classify(
            "fn main() -> int {
                int x;
                x = 5;
                if (x > 3) { x = 0; }
                return x;
            }",
        );
        let branches = p.branches();
        assert_eq!(branches.len(), 1);
        assert_eq!(c.class(branches[0]), BranchClass::NonLoop);
        assert_eq!(c.loop_prediction(branches[0]), None);
    }

    #[test]
    fn if_inside_loop_is_nonloop() {
        let (p, c) = classify(
            "fn main() -> int {
                int i; int s;
                for (i = 0; i < 10; i = i + 1) {
                    if (i % 2 == 0) { s = s + 1; }
                }
                return s;
            }",
        );
        let nonloop = p
            .branches()
            .iter()
            .filter(|b| c.class(**b) == BranchClass::NonLoop)
            .count();
        // The guard and the mod test are non-loop; the latch is a loop
        // branch.
        assert_eq!(nonloop, 2);
    }

    #[test]
    fn nested_loop_inner_latch_predicts_iteration() {
        let (p, c) = classify(
            "fn main() -> int {
                int i; int j; int s;
                for (i = 0; i < 4; i = i + 1) {
                    for (j = 0; j < 4; j = j + 1) { s = s + 1; }
                }
                return s;
            }",
        );
        let loop_branches: Vec<_> = p
            .branches()
            .into_iter()
            .filter(|b| c.class(*b) == BranchClass::Loop)
            .collect();
        assert_eq!(loop_branches.len(), 2);
        for br in loop_branches {
            assert_eq!(c.loop_prediction(br), Some(Direction::Taken));
        }
    }
}
