//! **Call heuristic.** From the paper: *"The successor block contains a
//! call or unconditionally passes control to a block with a call that it
//! dominates, and the successor block does not postdominate the branch.
//! If the heuristic applies, predict the successor without the
//! property."* Many conditional calls handle exceptional situations
//! (error printing being the canonical example), so the call is avoided.

use bpfree_ir::BlockId;

use super::{contains_call, jump_target, BranchContext};
use crate::predictors::Direction;

pub(super) fn predict(ctx: &BranchContext<'_>) -> Option<Direction> {
    ctx.select(
        |s| !ctx.postdominates_branch(s) && leads_to_call(ctx, s),
        false,
    )
}

fn leads_to_call(ctx: &BranchContext<'_>, s: BlockId) -> bool {
    if contains_call(ctx.func, s) {
        return true;
    }
    match jump_target(ctx.func, s) {
        Some(t) => contains_call(ctx.func, t) && ctx.analysis.doms.dominates(s, t),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::heuristics::testutil::predictions_for;
    use crate::heuristics::HeuristicKind;
    use crate::predictors::Direction;

    const K: HeuristicKind = HeuristicKind::Call;

    #[test]
    fn conditional_call_is_avoided() {
        let preds = predictions_for(
            "fn report(int code) -> int {
                int i; int s;
                for (i = 0; i < code; i = i + 1) { s = s + i * code - (s >> 3); }
                while (s > 100) { s = s - 7; }
                return s;
            }
            fn main() -> int {
                int x; int e;
                x = 3;
                if (x == 99) { e = report(x); }
                return e;
            }",
            K,
        );
        // The then block contains the call; it sits on the fall-through
        // side (branch-over). Predict the successor WITHOUT the call: the
        // taken side. (report's own loop guards are not covered.)
        assert!(preds.contains(&Some(Direction::Taken)), "{preds:?}");
    }

    #[test]
    fn call_on_both_sides_not_covered() {
        let preds = predictions_for(
            "fn f(int x) -> int { return x; }
            fn main() -> int {
                int x; int r;
                if (x == 0) { r = f(1); } else { r = f(2); }
                return r;
            }",
            K,
        );
        assert_eq!(preds, vec![None]);
    }

    #[test]
    fn successor_that_postdominates_is_ignored() {
        // The join block contains a call that always executes. Its
        // postdomination of the branch disqualifies the property, and the
        // then block has no call, so neither side qualifies: not covered.
        let preds = predictions_for(
            "fn f(int x) -> int { return x; }
            fn main() -> int {
                int x; int r;
                if (x > 0) { r = 1; }
                r = f(r);
                return r;
            }",
            K,
        );
        assert_eq!(preds, vec![None]);
    }

    #[test]
    fn call_behind_unconditional_jump_detected() {
        // The then-arm's last block jumps to a block it dominates that
        // calls. Construct: if (c) { if-less body ending in jump to a
        // call block } -- simplest: then block itself empty, jumping to
        // the call. An if with else: then arm calls after a nested block.
        let preds = predictions_for(
            "fn log_it(int x) -> int {
                int i; int s;
                for (i = 0; i < x; i = i + 1) { s = s + i * i - (s >> 2); }
                while (s > 50) { s = s - 9; }
                return s;
            }
            fn main() -> int {
                int x; int r;
                x = 5;
                if (x == 123) {
                    { r = log_it(x); }
                } else {
                    r = 2;
                }
                return r;
            }",
            K,
        );
        // The then arm contains the call directly (nested block flattens),
        // the else arm does not: predict the else side (taken under
        // branch-over polarity).
        assert!(preds.contains(&Some(Direction::Taken)), "{preds:?}");
    }
}
