//! **Store heuristic.** From the paper: *"The successor block contains a
//! store instruction and does not postdominate the branch. If the
//! heuristic applies, predict the successor without the property."* Tried
//! "more out of curiosity than intuition"; weak on integer codes but
//! strong on floating-point benchmarks — it is the heuristic that gets
//! tomcatv's max-update branches right.

use super::{contains_store, BranchContext};
use crate::predictors::Direction;

pub(super) fn predict(ctx: &BranchContext<'_>) -> Option<Direction> {
    ctx.select(
        |s| !ctx.postdominates_branch(s) && contains_store(ctx.func, s),
        false,
    )
}

#[cfg(test)]
mod tests {
    use crate::heuristics::testutil::{predictions_for, single_prediction};
    use crate::heuristics::HeuristicKind;
    use crate::predictors::Direction;

    const K: HeuristicKind = HeuristicKind::Store;

    #[test]
    fn conditional_store_is_avoided() {
        let d = single_prediction(
            "global int cache[4];
            fn f(int x) -> int {
                if (x == 3) { cache[0] = x; }
                return x;
            }
            fn main() -> int { return f(1); }",
            K,
        );
        // The store sits in the then block (fall-through side); predict
        // the successor WITHOUT it: taken.
        assert_eq!(d, Some(Direction::Taken));
    }

    #[test]
    fn register_only_arms_not_covered() {
        let d = single_prediction(
            "fn f(int x) -> int {
                int v;
                if (x == 3) { v = 1; }
                return v;
            }
            fn main() -> int { return f(1); }",
            K,
        );
        assert_eq!(d, None);
    }

    #[test]
    fn max_update_pattern_predicts_no_update() {
        // The tomcatv pattern: the store heuristic predicts AVOIDING the
        // max update — which is the common case.
        let preds = predictions_for(
            "global int a[8];
            global int maxv;
            fn main() -> int {
                int i; int t;
                for (i = 0; i < 8; i = i + 1) {
                    t = a[i];
                    if (t > maxv) { maxv = t; }
                }
                return maxv;
            }",
            K,
        );
        // Branches in block order: the rotated-for guard, then the max
        // test. The max test's then block stores to maxv: predict taken
        // (skip the update).
        assert!(preds.contains(&Some(Direction::Taken)));
    }

    #[test]
    fn stores_on_both_sides_not_covered() {
        let d = single_prediction(
            "global int a; global int b;
            fn f(int x) -> int {
                if (x == 1) { a = x; } else { b = x; }
                return x;
            }
            fn main() -> int { return f(1); }",
            K,
        );
        assert_eq!(d, None);
    }
}
