//! **Return heuristic.** From the paper: *"The successor block contains a
//! return or unconditionally passes control to a block that contains a
//! return. If the heuristic applies, predict the successor without the
//! property."* Programs must loop or recurse to do useful work; a return
//! is the base case of recursion, and many returns handle infrequent
//! error and boundary conditions.

use bpfree_ir::BlockId;

use super::{is_return_block, jump_target, BranchContext};
use crate::predictors::Direction;

pub(super) fn predict(ctx: &BranchContext<'_>) -> Option<Direction> {
    ctx.select(|s| leads_to_return(ctx, s), false)
}

fn leads_to_return(ctx: &BranchContext<'_>, s: BlockId) -> bool {
    if is_return_block(ctx.func, s) {
        return true;
    }
    match jump_target(ctx.func, s) {
        Some(t) => is_return_block(ctx.func, t),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::heuristics::testutil::{predictions_for, single_prediction};
    use crate::heuristics::HeuristicKind;
    use crate::predictors::Direction;

    const K: HeuristicKind = HeuristicKind::Return;

    #[test]
    fn early_return_is_avoided() {
        // if (p == 0) { return -1; } ... loop ... — the non-error path
        // has control flow before its return, so only the error side's
        // block contains a return.
        let preds = predictions_for(
            "fn f(int p) -> int {
                int r; int i;
                if (p == 0) { return -1; }
                for (i = 0; i < p; i = i + 1) { r = r + i; }
                return r;
            }
            fn main() -> int { return f(3); }",
            K,
        );
        // Non-loop branches: the early-return test and the for guard.
        // The early-return block sits on the fall-through side
        // (branch-over); predict the successor WITHOUT it: taken.
        assert!(preds.contains(&Some(Direction::Taken)));
    }

    #[test]
    fn recursion_base_case_is_avoided() {
        let d = single_prediction(
            "fn down(int n) -> int {
                if (n == 0) { return 0; }
                return down(n - 1) + 1;
            }
            fn main() -> int { return down(4); }",
            K,
        );
        // BOTH sides return here (base case and the recursive return).
        // The recursive side's block contains a call then a return; the
        // base case returns directly. Both have the property: no
        // prediction.
        assert_eq!(d, None);
    }

    #[test]
    fn return_on_one_side_only() {
        let preds = predictions_for(
            "fn f(int n) -> int {
                int s; int i;
                if (n == 0) { return 0; }
                s = n + 1;
                for (i = 0; i < n; i = i + 1) { s = s + (s >> 2) - i; }
                if (s > 10) { s = 10; }
                return s;
            }
            fn main() -> int { return f(5); }",
            K,
        );
        // The early-return test: return on the fall-through side ->
        // predict Taken. The clamp near the end: both sides reach the
        // final return block directly -> both have the property -> None.
        assert!(preds.len() >= 2, "{preds:?}");
        assert!(preds.contains(&Some(Direction::Taken)));
        assert!(preds.contains(&None));
    }
}
