//! **Loop heuristic** (for non-loop branches). From the paper: *"The
//! successor does not postdominate the branch and is either a loop head
//! or a loop preheader (i.e., passes control unconditionally to a loop
//! head which it dominates). If the heuristic applies, predict the
//! successor with the property."* The intuition: loops are executed
//! rather than avoided — compilers generate an if-then around a do-until
//! loop, and the if usually enters.

use bpfree_ir::BlockId;

use super::{jump_target, BranchContext};
use crate::predictors::Direction;

pub(super) fn predict(ctx: &BranchContext<'_>) -> Option<Direction> {
    ctx.select(
        |s| !ctx.postdominates_branch(s) && is_head_or_preheader(ctx, s),
        true,
    )
}

fn is_head_or_preheader(ctx: &BranchContext<'_>, s: BlockId) -> bool {
    if ctx.analysis.loops.is_head(s) {
        return true;
    }
    match jump_target(ctx.func, s) {
        Some(h) => ctx.analysis.loops.is_head(h) && ctx.analysis.doms.dominates(s, h),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use crate::heuristics::testutil::predictions_for;
    use crate::heuristics::HeuristicKind;
    use crate::predictors::Direction;

    const K: HeuristicKind = HeuristicKind::Loop;

    #[test]
    fn rotated_while_guard_predicts_entering_the_loop() {
        // The rotated while guard chooses between the loop body (head)
        // and the exit; the heuristic predicts entering.
        let preds = predictions_for(
            "fn main() -> int {
                int i; int n;
                n = 10;
                while (i < n) { i = i + 1; }
                return i;
            }",
            K,
        );
        // Exactly one non-loop branch (the guard): body is the
        // fall-through side under branch-over polarity.
        assert_eq!(preds, vec![Some(Direction::FallThru)]);
    }

    #[test]
    fn explicit_if_around_loop_predicts_loop_side() {
        let preds = predictions_for(
            "fn main() -> int {
                int i; int s; int n;
                n = 5;
                if (n > 0) {
                    do { s = s + i; i = i + 1; } while (i < n);
                }
                return s;
            }",
            K,
        );
        // Two non-loop branches: the outer `if` guard and... the do-while
        // needs no guard, so only the `if`. It chooses between the
        // do-while body (via its preheader jump) and the join.
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0], Some(Direction::FallThru));
    }

    #[test]
    fn branch_with_no_loop_successor_not_covered() {
        let preds = predictions_for(
            "fn f(int x) -> int { if (x == 7) { return 1; } return 0; }
             fn main() -> int { return f(7); }",
            K,
        );
        assert_eq!(preds, vec![None]);
    }

    #[test]
    fn both_successors_loops_not_covered() {
        // if/else where both arms contain do-while loops whose heads are
        // the direct successors.
        let preds = predictions_for(
            "fn f(int x) -> int {
                int i;
                if (x == 3) {
                    do { i = i + 1; } while (i < 3);
                } else {
                    do { i = i + 2; } while (i < 8);
                }
                return i;
            }
            fn main() -> int { return f(1); }",
            K,
        );
        // The if branch sees a loop on both sides -> not covered.
        assert_eq!(preds.iter().filter(|p| p.is_some()).count(), 0);
    }
}
