//! **Pointer heuristic.** From the paper: pointer comparisons either
//! compare a pointer to null (`beq $zero, rM` after a load) or compare two
//! loaded pointers (`beq rM, rN`). In pointer-manipulating programs most
//! pointers are non-null and two pointers are rarely equal, so `beq`
//! predicts fall-through and `bne` predicts taken. Loads off `$gp`
//! disqualify a register (globals are usually not heap pointers), and a
//! call between the load and the branch kills the pattern.

use bpfree_ir::{Cond, Instr, Reg};

use super::BranchContext;
use crate::predictors::Direction;

pub(super) fn predict(ctx: &BranchContext<'_>) -> Option<Direction> {
    match *ctx.cond {
        // `beqz r` / `bnez r` — null tests when r was just loaded.
        Cond::Eqz(r) => loaded_pointer(ctx, r).then_some(Direction::FallThru),
        Cond::Nez(r) => loaded_pointer(ctx, r).then_some(Direction::Taken),
        // `beq a, b` / `bne a, b` — pointer equality when both were
        // loaded.
        Cond::Eq(a, b) => {
            (loaded_pointer(ctx, a) && loaded_pointer(ctx, b)).then_some(Direction::FallThru)
        }
        Cond::Ne(a, b) => {
            (loaded_pointer(ctx, a) && loaded_pointer(ctx, b)).then_some(Direction::Taken)
        }
        _ => None,
    }
}

/// Was `r` most recently defined, within the branch's own block, by a
/// load whose base is not `$gp`, with no intervening call?
fn loaded_pointer(ctx: &BranchContext<'_>, r: Reg) -> bool {
    for instr in ctx.func.block(ctx.block).instrs.iter().rev() {
        if instr.def() == Some(r) {
            return matches!(instr, Instr::Load { base, .. } if *base != Reg::GP);
        }
        if instr.is_call() {
            // A call between the defining load (further up) and the
            // branch disqualifies the pattern.
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use crate::heuristics::testutil::predictions_for;
    use crate::heuristics::HeuristicKind;
    use crate::predictors::Direction;

    const K: HeuristicKind = HeuristicKind::Pointer;

    #[test]
    fn loaded_null_test_predicts_non_null() {
        // `p[1]` loads the next pointer; testing it against null in the
        // same block matches the pattern. Branch-over negates `!= null`
        // to `beqz`: predicted fall-through = keep chasing.
        let preds = predictions_for(
            "fn f(ptr p) -> int {
                int n;
                do {
                    n = n + 1;
                    p = p[1];
                } while (p != null);
                return n;
            }
            fn main() -> int {
                ptr a; ptr b;
                b = alloc(2);
                a = alloc(2);
                a[1] = b;
                return f(a);
            }",
            K,
        );
        // The do-while latch is a LOOP branch, so the non-loop set here
        // is empty — instead place the test in an if:
        let preds2 = predictions_for(
            "fn f(ptr p) -> int {
                ptr q;
                q = p[1];
                if (q == null) { return -1; }
                return q[0];
            }
            fn main() -> int {
                ptr a;
                a = alloc(2);
                return f(a);
            }",
            K,
        );
        let _ = preds;
        // `if (q == null)` negated -> bnez q, which follows the load of
        // q in the same block: predict taken (q non-null, skip the error
        // return).
        assert_eq!(preds2, vec![Some(Direction::Taken)]);
    }

    #[test]
    fn parameter_null_test_not_covered() {
        // p lives in a register (no load): the pattern requires a load in
        // the branch's block.
        let preds = predictions_for(
            "fn f(ptr p) -> int {
                if (p == null) { return -1; }
                return p[0];
            }
            fn main() -> int { ptr a; a = alloc(1); return f(a); }",
            K,
        );
        assert_eq!(preds, vec![None]);
    }

    #[test]
    fn gp_relative_load_not_covered() {
        // Globals load off $gp: disqualified.
        let preds = predictions_for(
            "global int flag;
            fn main() -> int {
                if (flag == 0) { return 1; }
                return 2;
            }",
            K,
        );
        assert_eq!(preds, vec![None]);
    }

    #[test]
    fn two_loaded_pointers_equality() {
        let preds = predictions_for(
            "fn f(ptr a, ptr b) -> int {
                ptr x; ptr y;
                x = a[0];
                y = b[0];
                if (x == y) { return 1; }
                return 0;
            }
            fn main() -> int {
                ptr a; ptr b;
                a = alloc(1); b = alloc(1);
                return f(a, b);
            }",
            K,
        );
        // Negated to bne x, y: both loaded off non-GP bases: predict
        // taken (pointers rarely equal -> skip then-block).
        assert_eq!(preds, vec![Some(Direction::Taken)]);
    }

    #[test]
    fn call_between_load_and_branch_kills_pattern() {
        let preds = predictions_for(
            "fn g() -> int {
                int i; int s;
                for (i = 0; i < 9; i = i + 1) { s = s + i * 3 - (s >> 1); }
                while (s > 40) { s = s - 11; }
                return s;
            }
            fn f(ptr p) -> int {
                ptr q; int z;
                q = p[0];
                z = g();
                if (q == null) { return -1; }
                return q[0] + z;
            }
            fn main() -> int { ptr a; a = alloc(1); return f(a); }",
            K,
        );
        // The null test is killed by the intervening call; g's own loop
        // guards are likewise uncovered.
        assert!(preds.iter().all(|p| p.is_none()), "{preds:?}");
    }

    #[test]
    fn sign_tests_not_covered() {
        let preds = predictions_for(
            "fn f(ptr p) -> int {
                int v;
                v = p[0];
                if (v > 0) { return 1; }
                return 0;
            }
            fn main() -> int { ptr a; a = alloc(1); return f(a); }",
            K,
        );
        assert_eq!(preds, vec![None]);
    }

    #[test]
    fn sp_relative_load_is_allowed() {
        // Local array slots load off $sp — the paper treats SP loads as
        // potential pointer loads (local pointer variables).
        let preds = predictions_for(
            "fn main() -> int {
                int slots[2];
                ptr q;
                slots[0] = alloc(1);
                q = slots[0];
                if (q == null) { return -1; }
                return 0;
            }",
            K,
        );
        assert_eq!(preds, vec![Some(Direction::Taken)]);
    }
}
