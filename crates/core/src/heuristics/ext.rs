//! Generalised heuristics — the paper's Section 4.4 future work.
//!
//! *"All of the heuristics discussed above are very local in nature …
//! Some of the heuristics could clearly be generalized to consider more
//! basic blocks. For example, the guard heuristic could look farther
//! away from the branch to see if the branch value is reused by an
//! instruction whose execution is controlled by the branch. Other
//! heuristics could be similarly generalized. It remains to be seen how
//! such generalizations affect the coverage and performance of the
//! heuristics."*
//!
//! This module implements those generalisations with a configurable
//! block-depth bound and the same selection-property scheme, so the
//! `extensions` experiment binary can answer the paper's open question
//! on our suite.

use std::collections::VecDeque;

use bpfree_ir::{BlockId, FReg, Instr, Reg, Terminator};

use super::{contains_call, contains_store, is_return_block, BranchContext};
use crate::predictors::Direction;

/// The generalised (multi-block) heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtKind {
    /// Guard, following the guarded value through blocks *dominated by*
    /// the successor until redefinition.
    GuardDeep,
    /// Call, scanning blocks dominated by the successor.
    CallDeep,
    /// Return, scanning blocks dominated by the successor.
    ReturnDeep,
    /// Store, scanning blocks dominated by the successor.
    StoreDeep,
}

impl ExtKind {
    /// All generalised heuristics.
    pub const ALL: [ExtKind; 4] = [
        ExtKind::GuardDeep,
        ExtKind::CallDeep,
        ExtKind::ReturnDeep,
        ExtKind::StoreDeep,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ExtKind::GuardDeep => "Guard+",
            ExtKind::CallDeep => "Call+",
            ExtKind::ReturnDeep => "Return+",
            ExtKind::StoreDeep => "Store+",
        }
    }

    /// Evaluates the generalised heuristic, exploring at most `depth`
    /// blocks past each successor.
    pub fn predict(self, ctx: &BranchContext<'_>, depth: usize) -> Option<Direction> {
        match self {
            ExtKind::GuardDeep => guard_deep(ctx, depth),
            ExtKind::CallDeep => {
                region_property(ctx, depth, |c, b| contains_call(c.func, b), false)
            }
            ExtKind::ReturnDeep => {
                region_property(ctx, depth, |c, b| is_return_block(c.func, b), false)
            }
            ExtKind::StoreDeep => {
                region_property(ctx, depth, |c, b| contains_store(c.func, b), false)
            }
        }
    }
}

/// Blocks reachable from `s` through blocks dominated by `s`, including
/// `s`, capped at `limit` blocks — the region whose execution the branch
/// edge controls.
fn dominated_region(ctx: &BranchContext<'_>, s: BlockId, limit: usize) -> Vec<BlockId> {
    let mut out = Vec::new();
    let mut queue = VecDeque::new();
    queue.push_back(s);
    while let Some(b) = queue.pop_front() {
        if out.contains(&b) {
            continue;
        }
        out.push(b);
        if out.len() >= limit {
            break;
        }
        for &succ in ctx.analysis.cfg.successors(b) {
            if ctx.analysis.doms.dominates(s, succ) && !out.contains(&succ) {
                queue.push_back(succ);
            }
        }
    }
    out
}

/// Generic multi-block selection property: does any block in the
/// dominated region of a successor satisfy `prop`? The successor must
/// not postdominate the branch; exactly-one-side selection applies, and
/// `predict_with` chooses which side to predict.
fn region_property(
    ctx: &BranchContext<'_>,
    depth: usize,
    prop: impl Fn(&BranchContext<'_>, BlockId) -> bool,
    predict_with: bool,
) -> Option<Direction> {
    ctx.select(
        |s| {
            !ctx.postdominates_branch(s)
                && dominated_region(ctx, s, depth)
                    .into_iter()
                    .any(|b| prop(ctx, b))
        },
        predict_with,
    )
}

/// The generalised guard: the branch operand is used before redefinition
/// somewhere in the successor's dominated region, following paths only
/// while the register stays live (not redefined).
fn guard_deep(ctx: &BranchContext<'_>, depth: usize) -> Option<Direction> {
    let operands = ctx.cond.uses();
    let foperands: Vec<FReg> = if ctx.cond.uses_fflag() {
        ctx.func
            .block(ctx.block)
            .instrs
            .iter()
            .rev()
            .find_map(|i| match i {
                Instr::CmpF { fs, ft, .. } => Some(vec![*fs, *ft]),
                _ => None,
            })
            .unwrap_or_default()
    } else {
        Vec::new()
    };
    if operands.is_empty() && foperands.is_empty() {
        return None;
    }
    ctx.select(
        |s| {
            !ctx.postdominates_branch(s)
                && (operands.iter().any(|&r| used_in_region(ctx, s, r, depth))
                    || foperands.iter().any(|&r| fused_in_region(ctx, s, r, depth)))
        },
        true,
    )
}

/// Word-register liveness walk: search the dominated region from `s`,
/// stopping along any path where `r` is redefined before a use.
fn used_in_region(ctx: &BranchContext<'_>, s: BlockId, r: Reg, limit: usize) -> bool {
    let mut visited = Vec::new();
    let mut queue = VecDeque::new();
    queue.push_back(s);
    while let Some(b) = queue.pop_front() {
        if visited.contains(&b) || visited.len() >= limit {
            continue;
        }
        visited.push(b);
        let block = ctx.func.block(b);
        let mut defined = false;
        for instr in &block.instrs {
            if instr.uses().contains(&r) {
                return true;
            }
            if instr.def() == Some(r) {
                defined = true;
                break;
            }
        }
        if defined {
            continue;
        }
        match &block.term {
            Terminator::Branch { cond, .. } if cond.uses().contains(&r) => return true,
            Terminator::Ret { val: Some(v), .. } if *v == r => return true,
            _ => {}
        }
        for &succ in ctx.analysis.cfg.successors(b) {
            if ctx.analysis.doms.dominates(s, succ) {
                queue.push_back(succ);
            }
        }
    }
    false
}

/// Float-register analogue of [`used_in_region`].
fn fused_in_region(ctx: &BranchContext<'_>, s: BlockId, r: FReg, limit: usize) -> bool {
    let mut visited = Vec::new();
    let mut queue = VecDeque::new();
    queue.push_back(s);
    while let Some(b) = queue.pop_front() {
        if visited.contains(&b) || visited.len() >= limit {
            continue;
        }
        visited.push(b);
        let block = ctx.func.block(b);
        let mut defined = false;
        for instr in &block.instrs {
            if instr.fuses().contains(&r) {
                return true;
            }
            if instr.fdef() == Some(r) {
                defined = true;
                break;
            }
        }
        if defined {
            continue;
        }
        if matches!(&block.term, Terminator::Ret { fval: Some(v), .. } if *v == r) {
            return true;
        }
        for &succ in ctx.analysis.cfg.successors(b) {
            if ctx.analysis.doms.dominates(s, succ) {
                queue.push_back(succ);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{BranchClass, BranchClassifier};
    use crate::heuristics::{BranchContext, HeuristicKind};
    use bpfree_ir::BranchRef;

    fn ext_predictions(src: &str, kind: ExtKind, depth: usize) -> Vec<Option<Direction>> {
        let p = bpfree_lang::compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let c = BranchClassifier::analyze(&p);
        let mut branches: Vec<BranchRef> = p
            .branches()
            .into_iter()
            .filter(|b| c.class(*b) == BranchClass::NonLoop)
            .collect();
        branches.sort();
        branches
            .into_iter()
            .map(|b| {
                let ctx = BranchContext::new(&p, c.analysis(&p, b.func), b);
                kind.predict(&ctx, depth)
            })
            .collect()
    }

    fn base_predictions(src: &str, kind: HeuristicKind) -> Vec<Option<Direction>> {
        let p = bpfree_lang::compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let c = BranchClassifier::analyze(&p);
        let t = crate::heuristics::HeuristicTable::build(&p, &c);
        let mut branches: Vec<BranchRef> = t.branches().collect();
        branches.sort();
        branches
            .into_iter()
            .map(|b| t.prediction(b, kind))
            .collect()
    }

    /// A guard whose use sits one block deeper than the successor: the
    /// base heuristic misses it, the deep one finds it.
    const DEEP_GUARD: &str = "global int sink;
    fn f(ptr p, int flag) -> int {
        int v;
        if (p != null) {
            if (flag > 1000000) { sink = 1; }
            v = p[0];
        }
        return v;
    }
    fn main() -> int { ptr a; a = alloc(1); return f(a, 1); }";

    #[test]
    fn deep_guard_extends_coverage() {
        let base = base_predictions(DEEP_GUARD, HeuristicKind::Guard);
        let deep = ext_predictions(DEEP_GUARD, ExtKind::GuardDeep, 8);
        let base_covered = base.iter().filter(|p| p.is_some()).count();
        let deep_covered = deep.iter().filter(|p| p.is_some()).count();
        assert!(
            deep_covered > base_covered,
            "base {base_covered} vs deep {deep_covered}: {base:?} {deep:?}"
        );
    }

    #[test]
    fn depth_one_matches_base_call_on_direct_patterns() {
        // With depth 1, the region is just the successor block — Call+
        // sees exactly what the base Call heuristic sees for direct
        // call-in-successor patterns.
        let src = "fn big(int x) -> int {
            int i; int s;
            for (i = 0; i < x; i = i + 1) { s = s + i * 31 - (s >> 3); }
            while (s > 77) { s = s - 13; }
            return s;
        }
        fn main() -> int {
            int x; int e;
            x = 3;
            if (x == 99) { e = big(x); }
            return e;
        }";
        let deep = ext_predictions(src, ExtKind::CallDeep, 1);
        assert!(deep.contains(&Some(Direction::Taken)), "{deep:?}");
    }

    #[test]
    fn deep_call_sees_calls_behind_branches() {
        // The call is two blocks into the then-region, behind another
        // branch: the base heuristic cannot see it.
        let src = "fn big(int x) -> int {
            int i; int s;
            for (i = 0; i < x; i = i + 1) { s = s + i * 7 - (s >> 2); }
            while (s > 55) { s = s - 17; }
            return s;
        }
        fn main() -> int {
            int x; int e;
            x = 1;
            if (x == 12345) {
                e = e + 1;
                if (e < 100) { e = big(x); }
                e = e + 2;
            }
            return e;
        }";
        let base = base_predictions(src, HeuristicKind::Call);
        let deep = ext_predictions(src, ExtKind::CallDeep, 8);
        let base_covered = base.iter().filter(|p| p.is_some()).count();
        let deep_covered = deep.iter().filter(|p| p.is_some()).count();
        assert!(deep_covered >= base_covered);
        assert!(deep.contains(&Some(Direction::Taken)), "{deep:?}");
    }

    #[test]
    fn redefinition_stops_the_deep_guard_walk() {
        let src = "global int sink;
        fn f(int x) -> int {
            int v;
            if (x == 777) {
                x = 0;
                if (sink > 1000) { sink = 0; }
                v = x + 1;
            } else {
                v = 5;
            }
            return v;
        }
        fn main() -> int { return f(3); }";
        let deep = ext_predictions(src, ExtKind::GuardDeep, 8);
        // x is redefined at the top of the then-region before any use, so
        // the guard property must not fire on the x test; the nested
        // sink test is a different branch.
        let p = bpfree_lang::compile(src).unwrap();
        let _ = p;
        assert!(
            !deep.is_empty() && deep[0].is_none()
                || deep.iter().filter(|d| d.is_some()).count() <= 1,
            "{deep:?}"
        );
    }
}
