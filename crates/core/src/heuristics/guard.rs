//! **Guard heuristic.** From the paper: *"Register r is an operand of the
//! branch instruction, register r is used in the successor block before
//! it is defined, and the successor block does not postdominate the
//! branch. If the heuristic applies, predict the successor with the
//! property."* Most guards catch exceptional conditions; the common case
//! lets the guarded value flow to its use — e.g. a null-pointer test
//! guarding a dereference is usually not null.
//!
//! The paper notes the heuristic "analyzes both integer and floating
//! point branches": for a branch on the FP condition flag, the operands
//! are the registers of the compare that set the flag. This is what makes
//! guard *mispredict* tomcatv's max-update branches (`if (a > max) max =
//! a` uses `a` in the update), the paper's marquee failure case.

use bpfree_ir::{BlockId, FReg, Instr, Reg, Terminator};

use super::BranchContext;
use crate::predictors::Direction;

pub(super) fn predict(ctx: &BranchContext<'_>) -> Option<Direction> {
    let operands = ctx.cond.uses();
    let foperands = if ctx.cond.uses_fflag() {
        last_fcmp_operands(ctx)
    } else {
        Vec::new()
    };
    if operands.is_empty() && foperands.is_empty() {
        return None;
    }
    ctx.select(
        |s| {
            !ctx.postdominates_branch(s)
                && (operands.iter().any(|&r| used_before_defined(ctx, s, r))
                    || foperands.iter().any(|&r| fused_before_defined(ctx, s, r)))
        },
        true,
    )
}

/// The operands of the compare that set the FP flag this branch reads.
fn last_fcmp_operands(ctx: &BranchContext<'_>) -> Vec<FReg> {
    ctx.func
        .block(ctx.block)
        .instrs
        .iter()
        .rev()
        .find_map(|i| match i {
            Instr::CmpF { fs, ft, .. } => Some(vec![*fs, *ft]),
            _ => None,
        })
        .unwrap_or_default()
}

/// Is `r` read in block `s` before any instruction redefines it? The
/// block's terminator counts as a use site.
fn used_before_defined(ctx: &BranchContext<'_>, s: BlockId, r: Reg) -> bool {
    let block = ctx.func.block(s);
    for instr in &block.instrs {
        if instr.uses().contains(&r) {
            return true;
        }
        if instr.def() == Some(r) {
            return false;
        }
    }
    match &block.term {
        Terminator::Branch { cond, .. } => cond.uses().contains(&r),
        Terminator::Ret { val, .. } => *val == Some(r),
        Terminator::Jump(_) => false,
    }
}

/// Float-register analogue of [`used_before_defined`].
fn fused_before_defined(ctx: &BranchContext<'_>, s: BlockId, r: FReg) -> bool {
    let block = ctx.func.block(s);
    for instr in &block.instrs {
        if instr.fuses().contains(&r) {
            return true;
        }
        if instr.fdef() == Some(r) {
            return false;
        }
    }
    matches!(&block.term, Terminator::Ret { fval: Some(fr), .. } if *fr == r)
}

#[cfg(test)]
mod tests {
    use crate::heuristics::testutil::{predictions_for, single_prediction};
    use crate::heuristics::HeuristicKind;
    use crate::predictors::Direction;

    const K: HeuristicKind = HeuristicKind::Guard;

    #[test]
    fn null_guard_predicts_the_dereference_side() {
        let d = single_prediction(
            "fn f(ptr p) -> int {
                int v;
                if (p != null) { v = p[0]; }
                return v;
            }
            fn main() -> int { ptr q; q = alloc(1); return f(q); }",
            K,
        );
        // The then block dereferences p (uses the branch operand). It is
        // the fall-through side; predict WITH the property.
        assert_eq!(d, Some(Direction::FallThru));
    }

    #[test]
    fn value_used_on_both_sides_not_covered() {
        let d = single_prediction(
            "fn f(int x) -> int {
                int v;
                if (x == 7) { v = x + 1; } else { v = x - 1; }
                return v;
            }
            fn main() -> int { return f(7); }",
            K,
        );
        assert_eq!(d, None);
    }

    #[test]
    fn redefinition_before_use_is_not_a_use() {
        let preds = predictions_for(
            "fn f(int x) -> int {
                int v;
                if (x == 9) { x = 0; v = x; } else { v = 5; }
                return v;
            }
            fn main() -> int { return f(2); }",
            K,
        );
        // In the then arm, x is redefined (Move x <- 0) before any read
        // of x; the else arm never touches x. Not covered.
        assert_eq!(preds, vec![None]);
    }

    #[test]
    fn float_max_guard_predicts_the_update_side() {
        // The tomcatv pattern: `if (r > max) { max = r; }` — the update
        // block reads r (a compare operand), so guard predicts the
        // update. On max-finding sweeps this is the RARE side: the
        // paper's famous guard misprediction.
        let preds = predictions_for(
            "global float a[8];
            global int touched;
            fn main() -> int {
                int i;
                float maxv; float r;
                maxv = -1000000.0;
                for (i = 0; i < 8; i = i + 1) {
                    r = a[i];
                    if (r > maxv) { maxv = r; touched = touched + 1; }
                }
                return touched;
            }",
            K,
        );
        // The max test's update block is the fall-through (branch-over):
        // guard predicts FallThru. (The loop guard is not covered.)
        assert!(preds.contains(&Some(Direction::FallThru)), "{preds:?}");
    }

    #[test]
    fn float_branch_without_use_not_covered() {
        let d = single_prediction(
            "fn f(float x) -> int {
                int v;
                if (x > 0.5) { v = 1; }
                return v;
            }
            fn main() -> int { return f(0.7); }",
            K,
        );
        assert_eq!(d, None);
    }
}
