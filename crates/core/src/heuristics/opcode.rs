//! **Opcode heuristic.** From the paper: *"Because many programs use
//! negative integers to denote error values, the heuristic predicts that
//! `bltz` and `blez` are not taken and that `bgtz` and `bgez` are taken.
//! The heuristic also identifies floating point comparisons that check if
//! two floating point numbers are equal, predicting that such tests
//! usually evaluate false."*

use bpfree_ir::{Cond, FCmp, Instr};

use super::BranchContext;
use crate::predictors::Direction;

pub(super) fn predict(ctx: &BranchContext<'_>) -> Option<Direction> {
    match *ctx.cond {
        // Sign tests: negative means error, so tests for negative fail.
        Cond::Ltz(_) | Cond::Lez(_) => Some(Direction::FallThru),
        Cond::Gtz(_) | Cond::Gez(_) => Some(Direction::Taken),
        // FP-flag branches: only equality compares are predicted.
        Cond::FTrue | Cond::FFalse => {
            let cmp = last_fcmp(ctx)?;
            if cmp != FCmp::Eq {
                return None;
            }
            // Equality is usually false: a bc1t on c.eq falls through, a
            // bc1f on c.eq is taken.
            Some(match *ctx.cond {
                Cond::FTrue => Direction::FallThru,
                _ => Direction::Taken,
            })
        }
        // Integer equality and zero tests are left to other heuristics.
        Cond::Eqz(_) | Cond::Nez(_) | Cond::Eq(_, _) | Cond::Ne(_, _) => None,
    }
}

/// The comparison that set the FP flag this branch reads: the last `CmpF`
/// in the branch's own block.
fn last_fcmp(ctx: &BranchContext<'_>) -> Option<FCmp> {
    ctx.func
        .block(ctx.block)
        .instrs
        .iter()
        .rev()
        .find_map(|i| match i {
            Instr::CmpF { cmp, .. } => Some(*cmp),
            _ => None,
        })
}

#[cfg(test)]
mod tests {
    use crate::heuristics::testutil::single_prediction;
    use crate::heuristics::HeuristicKind;
    use crate::predictors::Direction;

    const K: HeuristicKind = HeuristicKind::Opcode;

    #[test]
    fn negative_tests_predict_fallthru_side() {
        // `if (x < 0) {...}` lowers to a branch on x >= 0 over the then
        // block: the bgez form predicts TAKEN, i.e. x < 0 is false.
        let d = single_prediction(
            "fn f(int x) -> int { if (x < 0) { return -1; } return x; }
             fn main() -> int { return f(5); }",
            K,
        );
        assert_eq!(d, Some(Direction::Taken));
    }

    #[test]
    fn positive_tests_predict_the_then_side() {
        // `if (x > 0)` lowers to blez over the then block: predicted NOT
        // taken, so the then block (x > 0 true) is predicted.
        let d = single_prediction(
            "fn f(int x) -> int { if (x > 0) { return 1; } return 0; }
             fn main() -> int { return f(5); }",
            K,
        );
        assert_eq!(d, Some(Direction::FallThru));
    }

    #[test]
    fn float_equality_predicted_false() {
        // `if (a == b)` on floats: bc1f over the then block; c.eq usually
        // false means the branch IS taken (skip the then block).
        let d = single_prediction(
            "fn f(float a, float b) -> int { if (a == b) { return 1; } return 0; }
             fn main() -> int { return f(1.0, 2.0); }",
            K,
        );
        assert_eq!(d, Some(Direction::Taken));
    }

    #[test]
    fn float_inequality_not_covered() {
        let d = single_prediction(
            "fn f(float a, float b) -> int { if (a < b) { return 1; } return 0; }
             fn main() -> int { return f(1.0, 2.0); }",
            K,
        );
        assert_eq!(d, None);
    }

    #[test]
    fn integer_equality_not_covered() {
        let d = single_prediction(
            "fn f(int a, int b) -> int { if (a == b) { return 1; } return 0; }
             fn main() -> int { return f(1, 2); }",
            K,
        );
        assert_eq!(d, None);
    }

    #[test]
    fn general_relational_not_covered() {
        // `a < b` with neither side zero goes through slt + bnez: no
        // sign-test opcode to key on.
        let d = single_prediction(
            "fn f(int a, int b) -> int { if (a < b) { return 1; } return 0; }
             fn main() -> int { return f(1, 2); }",
            K,
        );
        assert_eq!(d, None);
    }
}
