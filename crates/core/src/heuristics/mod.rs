//! The paper's seven non-loop branch heuristics (Section 4).
//!
//! Each heuristic examines only the basic block containing the branch and
//! its two successor blocks (at most two steps away), plus the natural
//! loop, domination, and postdomination analyses. A heuristic either
//! *applies* to a branch and yields a predicted direction, or does not
//! apply. The Loop/Call/Return/Guard/Store heuristics follow the paper's
//! selection-property scheme: *"If neither successor to the block
//! containing the conditional branch has the selection property or both
//! have the property, no prediction is made. If exactly one successor has
//! the property, the predictor chooses either the successor with the
//! property, or the successor without the property, depending on the
//! heuristic."*

mod call;
pub mod ext;
mod guard;
mod loop_heur;
mod opcode;
mod pointer;
mod ret;
mod store;

use bpfree_cfg::FunctionAnalysis;
use bpfree_ir::{BlockId, BranchRef, Cond, Function, Program, Terminator};

use crate::classify::{BranchClass, BranchClassifier};
use crate::predictors::Direction;

/// The seven program-based heuristics, named as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HeuristicKind {
    /// Branch-opcode heuristic: sign tests against zero and FP equality.
    Opcode,
    /// Non-loop branch choosing between executing and avoiding a loop.
    Loop,
    /// Successor containing a call is avoided.
    Call,
    /// Successor containing a return is avoided.
    Return,
    /// A branch on a value guarding a use of that value takes the guard.
    Guard,
    /// Successor containing a store is avoided.
    Store,
    /// Pointer null tests and pointer equality tests evaluate false.
    Pointer,
}

impl HeuristicKind {
    /// All seven heuristics, in the paper's Table 3 column order.
    pub const ALL: [HeuristicKind; 7] = [
        HeuristicKind::Opcode,
        HeuristicKind::Loop,
        HeuristicKind::Call,
        HeuristicKind::Return,
        HeuristicKind::Guard,
        HeuristicKind::Store,
        HeuristicKind::Pointer,
    ];

    /// The priority order the paper uses for its final results (Tables 5
    /// and 6): Pointer, Call, Opcode, Return, Store, Loop, Guard.
    pub fn paper_order() -> [HeuristicKind; 7] {
        [
            HeuristicKind::Pointer,
            HeuristicKind::Call,
            HeuristicKind::Opcode,
            HeuristicKind::Return,
            HeuristicKind::Store,
            HeuristicKind::Loop,
            HeuristicKind::Guard,
        ]
    }

    /// Dense index in `0..7` (for tables keyed by heuristic).
    pub fn index(self) -> usize {
        match self {
            HeuristicKind::Opcode => 0,
            HeuristicKind::Loop => 1,
            HeuristicKind::Call => 2,
            HeuristicKind::Return => 3,
            HeuristicKind::Guard => 4,
            HeuristicKind::Store => 5,
            HeuristicKind::Pointer => 6,
        }
    }

    /// The paper's short column label.
    pub fn label(self) -> &'static str {
        match self {
            HeuristicKind::Opcode => "Opcode",
            HeuristicKind::Loop => "Loop",
            HeuristicKind::Call => "Call",
            HeuristicKind::Return => "Return",
            HeuristicKind::Guard => "Guard",
            HeuristicKind::Store => "Store",
            HeuristicKind::Pointer => "Point",
        }
    }

    /// Evaluates this heuristic on one branch.
    pub fn predict(self, ctx: &BranchContext<'_>) -> Option<Direction> {
        match self {
            HeuristicKind::Opcode => opcode::predict(ctx),
            HeuristicKind::Loop => loop_heur::predict(ctx),
            HeuristicKind::Call => call::predict(ctx),
            HeuristicKind::Return => ret::predict(ctx),
            HeuristicKind::Guard => guard::predict(ctx),
            HeuristicKind::Store => store::predict(ctx),
            HeuristicKind::Pointer => pointer::predict(ctx),
        }
    }
}

impl std::fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything a heuristic may inspect about one branch site.
#[derive(Debug, Clone, Copy)]
pub struct BranchContext<'a> {
    /// The whole program (for inter-procedural lookups).
    pub program: &'a Program,
    /// The function containing the branch.
    pub func: &'a Function,
    /// The function's control-flow analyses.
    pub analysis: &'a FunctionAnalysis,
    /// The block ending in the branch.
    pub block: BlockId,
    /// The branch condition.
    pub cond: &'a Cond,
    /// The taken successor.
    pub taken: BlockId,
    /// The fall-through successor.
    pub fallthru: BlockId,
}

impl<'a> BranchContext<'a> {
    /// Builds the context for a branch site.
    ///
    /// # Panics
    ///
    /// Panics if `branch.block` does not end in a conditional branch.
    pub fn new(
        program: &'a Program,
        analysis: &'a FunctionAnalysis,
        branch: BranchRef,
    ) -> BranchContext<'a> {
        let func = program.func(branch.func);
        let Terminator::Branch {
            cond,
            taken,
            fallthru,
        } = &func.block(branch.block).term
        else {
            panic!("{branch} is not a conditional branch site")
        };
        BranchContext {
            program,
            func,
            analysis,
            block: branch.block,
            cond,
            taken: *taken,
            fallthru: *fallthru,
        }
    }

    /// Does `s` postdominate the branch block?
    pub fn postdominates_branch(&self, s: BlockId) -> bool {
        self.analysis.pdoms.postdominates(s, self.block)
    }

    /// The paper's selection-property rule: if exactly one successor has
    /// `property`, predict the successor **with** it (`predict_with =
    /// true`) or **without** it; otherwise no prediction.
    pub fn select(
        &self,
        property: impl Fn(BlockId) -> bool,
        predict_with: bool,
    ) -> Option<Direction> {
        let tp = property(self.taken);
        let fp = property(self.fallthru);
        if tp == fp {
            return None;
        }
        let with = if tp {
            Direction::Taken
        } else {
            Direction::FallThru
        };
        Some(if predict_with { with } else { with.flip() })
    }
}

/// The per-branch applicability table: every heuristic's prediction (or
/// non-applicability) for every **non-loop** branch of a program, stored
/// as a dense prediction matrix — one `[Option<Direction>; 7]` row per
/// branch, rows sorted in program order.
///
/// Building the table once lets the ordering experiments evaluate all
/// 5040 priority orders without re-running the heuristics.
///
/// # Example
///
/// ```
/// use bpfree_core::{BranchClassifier, HeuristicKind, HeuristicTable};
/// let p = bpfree_lang::compile(
///     "fn main() -> int {
///         int x;
///         x = -3;
///         if (x < 0) { x = 0; }
///         return x;
///     }",
/// ).unwrap();
/// let c = BranchClassifier::analyze(&p);
/// let t = HeuristicTable::build(&p, &c);
/// let site = p.branches()[0];
/// // `if (x < 0)` is a sign test: the opcode heuristic applies.
/// assert!(t.prediction(site, HeuristicKind::Opcode).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct HeuristicTable {
    /// Non-loop branch sites, sorted (program order).
    branches: Vec<BranchRef>,
    /// Prediction matrix row per branch, parallel to `branches`; columns
    /// indexed by [`HeuristicKind::index`].
    matrix: Vec<[Option<Direction>; 7]>,
}

impl HeuristicTable {
    /// Runs all seven heuristics on every non-loop branch, in program
    /// order.
    pub fn build(program: &Program, classifier: &BranchClassifier) -> HeuristicTable {
        let mut branches = Vec::new();
        let mut matrix = Vec::new();
        for b in program.branches() {
            if classifier.class(b) != BranchClass::NonLoop {
                continue;
            }
            let ctx = BranchContext::new(program, classifier.analysis(program, b.func), b);
            let mut row = [None; 7];
            for kind in HeuristicKind::ALL {
                row[kind.index()] = kind.predict(&ctx);
            }
            branches.push(b);
            matrix.push(row);
        }
        HeuristicTable { branches, matrix }
    }

    /// Reassembles a table from previously extracted rows (the inverse
    /// of [`HeuristicTable::rows`]) — used by the on-disk artifact cache
    /// to restore a table without re-running the heuristics. Rows are
    /// re-sorted into program order if needed.
    pub fn from_rows(
        rows: impl IntoIterator<Item = (BranchRef, [Option<Direction>; 7])>,
    ) -> HeuristicTable {
        let mut rows: Vec<(BranchRef, [Option<Direction>; 7])> = rows.into_iter().collect();
        rows.sort_by_key(|&(b, _)| b);
        let (branches, matrix) = rows.into_iter().unzip();
        HeuristicTable { branches, matrix }
    }

    /// Iterator over every `(branch, row)` pair, in program order.
    pub fn rows(&self) -> impl Iterator<Item = (BranchRef, &[Option<Direction>; 7])> + '_ {
        self.branches.iter().copied().zip(&self.matrix)
    }

    /// The prediction of `kind` for `branch` (`None` if the heuristic
    /// does not apply, or if `branch` is not a non-loop branch).
    pub fn prediction(&self, branch: BranchRef, kind: HeuristicKind) -> Option<Direction> {
        self.row(branch).and_then(|row| row[kind.index()])
    }

    /// The full row for a branch, indexed by [`HeuristicKind::index`].
    pub fn row(&self, branch: BranchRef) -> Option<&[Option<Direction>; 7]> {
        self.branches
            .binary_search(&branch)
            .ok()
            .map(|i| &self.matrix[i])
    }

    /// Iterator over the non-loop branches in the table, in program
    /// order.
    pub fn branches(&self) -> impl Iterator<Item = BranchRef> + '_ {
        self.branches.iter().copied()
    }

    /// Number of non-loop branch sites.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// True when the program has no non-loop branches.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }
}

/// Does the block contain a call instruction?
pub(crate) fn contains_call(func: &Function, b: BlockId) -> bool {
    func.block(b).instrs.iter().any(|i| i.is_call())
}

/// Does the block contain a store instruction?
pub(crate) fn contains_store(func: &Function, b: BlockId) -> bool {
    func.block(b).instrs.iter().any(|i| i.is_store())
}

/// Does the block end in a return?
pub(crate) fn is_return_block(func: &Function, b: BlockId) -> bool {
    func.block(b).term.is_ret()
}

/// If the block ends in an unconditional jump, its target.
pub(crate) fn jump_target(func: &Function, b: BlockId) -> Option<BlockId> {
    match func.block(b).term {
        Terminator::Jump(t) => Some(t),
        _ => None,
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use crate::classify::BranchClassifier;

    /// Compiles a source and returns the heuristic predictions for every
    /// non-loop branch in `main`, in block order.
    pub fn predictions_for(src: &str, kind: HeuristicKind) -> Vec<Option<Direction>> {
        let p = bpfree_lang::compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let c = BranchClassifier::analyze(&p);
        let t = HeuristicTable::build(&p, &c);
        let mut branches: Vec<BranchRef> = t.branches().collect();
        branches.sort();
        branches
            .into_iter()
            .map(|b| t.prediction(b, kind))
            .collect()
    }

    /// Like `predictions_for` but for a single non-loop branch (panics
    /// unless exactly one exists).
    pub fn single_prediction(src: &str, kind: HeuristicKind) -> Option<Direction> {
        let v = predictions_for(src, kind);
        assert_eq!(
            v.len(),
            1,
            "expected exactly one non-loop branch, got {}",
            v.len()
        );
        v[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_distinct_indices() {
        let mut seen = [false; 7];
        for k in HeuristicKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn paper_order_is_a_permutation_of_all() {
        let mut order = HeuristicKind::paper_order().to_vec();
        order.sort();
        let mut all = HeuristicKind::ALL.to_vec();
        all.sort();
        assert_eq!(order, all);
    }

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(HeuristicKind::Pointer.label(), "Point");
        assert_eq!(HeuristicKind::Opcode.to_string(), "Opcode");
    }
}
