use std::hash::{Hash, Hasher};

use bpfree_ir::{BranchRef, Program, Terminator};
use bpfree_sim::EdgeProfile;

use crate::classify::{BranchClass, BranchClassifier};
use crate::heuristics::{HeuristicKind, HeuristicTable};

/// Fixed seed for the deterministic random Default predictor, so every
/// table in the reproduction shares the same random choices (the paper's
/// Table 5/6 note that the Default makes "the same prediction as in
/// Table 2").
pub const DEFAULT_SEED: u64 = 0x9E3779B97F4A7C15;

/// A static prediction: which outgoing edge of a branch executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// The branch's taken edge executes.
    Taken,
    /// The branch's fall-through edge executes.
    FallThru,
}

impl Direction {
    /// The other direction.
    pub fn flip(self) -> Direction {
        match self {
            Direction::Taken => Direction::FallThru,
            Direction::FallThru => Direction::Taken,
        }
    }

    /// Did a branch that went `taken` match this prediction?
    pub fn matches(self, taken: bool) -> bool {
        (self == Direction::Taken) == taken
    }
}

/// A static prediction for every branch site of a program, stored as a
/// sorted association list keyed by [`BranchRef`].
///
/// The builders below all emit branches in program order, which makes
/// construction a pure append; [`Predictions::get`] is a binary search
/// and [`Predictions::iter`] is deterministic (program order).
///
/// # Example
///
/// ```
/// use bpfree_core::{Direction, Predictions};
/// use bpfree_ir::{BranchRef, FuncId, BlockId};
/// let mut p = Predictions::new();
/// let b = BranchRef { func: FuncId(0), block: BlockId(3) };
/// p.set(b, Direction::Taken);
/// assert_eq!(p.get(b), Some(Direction::Taken));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Predictions {
    entries: Vec<(BranchRef, Direction)>,
}

impl Predictions {
    /// An empty prediction set.
    pub fn new() -> Predictions {
        Predictions::default()
    }

    /// Sets the prediction for one branch. Appending in program order is
    /// O(1); out-of-order or repeated sites fall back to a sorted
    /// insert/overwrite.
    pub fn set(&mut self, branch: BranchRef, dir: Direction) {
        match self.entries.last() {
            Some(&(last, _)) if last < branch => self.entries.push((branch, dir)),
            None => self.entries.push((branch, dir)),
            _ => match self.entries.binary_search_by_key(&branch, |&(b, _)| b) {
                Ok(i) => self.entries[i].1 = dir,
                Err(i) => self.entries.insert(i, (branch, dir)),
            },
        }
    }

    /// The prediction for `branch`, if any.
    pub fn get(&self, branch: BranchRef) -> Option<Direction> {
        self.entries
            .binary_search_by_key(&branch, |&(b, _)| b)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of predicted branch sites.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no branch is predicted.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over `(branch, direction)` pairs in program order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchRef, Direction)> + '_ {
        self.entries.iter().copied()
    }
}

impl FromIterator<(BranchRef, Direction)> for Predictions {
    /// Collects predictions; on duplicate sites the last one wins (the
    /// same overwrite semantics as repeated [`Predictions::set`] calls).
    fn from_iter<I: IntoIterator<Item = (BranchRef, Direction)>>(iter: I) -> Predictions {
        let mut entries: Vec<(BranchRef, Direction)> = iter.into_iter().collect();
        entries.sort_by_key(|&(b, _)| b);
        // Stable sort keeps duplicates in arrival order: keep the last.
        entries.reverse();
        entries.dedup_by_key(|&mut (b, _)| b);
        entries.reverse();
        Predictions { entries }
    }
}

/// Deterministic pseudo-random direction for a branch site: a hash of the
/// site and a seed. Stable across runs, tables, and predictor
/// constructions.
pub fn random_direction(branch: BranchRef, seed: u64) -> Direction {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    seed.hash(&mut h);
    branch.func.0.hash(&mut h);
    branch.block.0.hash(&mut h);
    // splitmix-style finalisation on top of SipHash output.
    let mut x = h.finish();
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51AFD7ED558CCD);
    x ^= x >> 33;
    if x & 1 == 0 {
        Direction::Taken
    } else {
        Direction::FallThru
    }
}

/// Always predict the target (taken) successor — the `Tgt` baseline of
/// Table 2.
pub fn taken_predictions(program: &Program) -> Predictions {
    program
        .branches()
        .into_iter()
        .map(|b| (b, Direction::Taken))
        .collect()
}

/// Always predict the fall-through successor.
pub fn fallthru_predictions(program: &Program) -> Predictions {
    program
        .branches()
        .into_iter()
        .map(|b| (b, Direction::FallThru))
        .collect()
}

/// Random prediction per branch — the `Rnd` baseline of Table 2.
pub fn random_predictions(program: &Program, seed: u64) -> Predictions {
    program
        .branches()
        .into_iter()
        .map(|b| (b, random_direction(b, seed)))
        .collect()
}

/// The perfect static predictor: the majority direction from an edge
/// profile (Section 2). Unexecuted branches predict taken (their choice
/// never matters dynamically).
pub fn perfect_predictions(program: &Program, profile: &EdgeProfile) -> Predictions {
    program
        .branches()
        .into_iter()
        .map(|b| {
            let c = profile.counts(b);
            let dir = if c.taken_majority() {
                Direction::Taken
            } else {
                Direction::FallThru
            };
            (b, dir)
        })
        .collect()
}

/// "Backward taken, forward not taken": the hardware-style strawman the
/// paper contrasts with natural-loop analysis. A branch whose taken
/// target lies at a lower block index (earlier in layout) predicts taken;
/// otherwise fall-through.
pub fn btfnt_predictions(program: &Program) -> Predictions {
    program
        .branches()
        .into_iter()
        .map(|b| {
            let Terminator::Branch { taken, .. } = program.func(b.func).block(b.block).term else {
                unreachable!("branches() yields only branch sites")
            };
            let dir = if taken.index() <= b.block.index() {
                Direction::Taken
            } else {
                Direction::FallThru
            };
            (b, dir)
        })
        .collect()
}

/// Loop prediction on loop branches plus random prediction on non-loop
/// branches — the paper's `Loop+Rand` comparison predictor.
pub fn loop_rand_predictions(
    program: &Program,
    classifier: &BranchClassifier,
    seed: u64,
) -> Predictions {
    program
        .branches()
        .into_iter()
        .map(|b| {
            let dir = classifier
                .loop_prediction(b)
                .unwrap_or_else(|| random_direction(b, seed));
            (b, dir)
        })
        .collect()
}

/// Why the combined predictor chose a direction for a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attribution {
    /// Loop branch, predicted by the loop predictor.
    LoopBranch,
    /// Non-loop branch predicted by this heuristic (first applicable in
    /// the priority order).
    Heuristic(HeuristicKind),
    /// Non-loop branch no heuristic covered: random Default.
    Default,
}

/// The paper's complete predictor (Section 5): loop prediction for loop
/// branches; for non-loop branches, the first applicable heuristic in a
/// priority order; random Default otherwise.
///
/// Both the prediction set and the attribution table are dense sorted
/// vectors built in program order.
///
/// # Example
///
/// ```
/// use bpfree_core::{BranchClassifier, CombinedPredictor, HeuristicKind};
/// let p = bpfree_lang::compile(
///     "fn main() -> int {
///         int i; int s;
///         for (i = 0; i < 100; i = i + 1) { if (i > 90) { s = s + 1; } }
///         return s;
///     }",
/// ).unwrap();
/// let c = BranchClassifier::analyze(&p);
/// let cp = CombinedPredictor::new(&p, &c, HeuristicKind::paper_order());
/// assert_eq!(cp.predictions().len(), p.branches().len());
/// ```
#[derive(Debug)]
pub struct CombinedPredictor {
    predictions: Predictions,
    /// Sorted parallel to `predictions` (both built in program order).
    attribution: Vec<(BranchRef, Attribution)>,
}

impl CombinedPredictor {
    /// Builds the predictor with the given heuristic priority order and
    /// the default random seed.
    pub fn new(
        program: &Program,
        classifier: &BranchClassifier,
        order: impl IntoIterator<Item = HeuristicKind>,
    ) -> CombinedPredictor {
        CombinedPredictor::with_seed(program, classifier, order, DEFAULT_SEED)
    }

    /// Builds the predictor with an explicit Default seed.
    pub fn with_seed(
        program: &Program,
        classifier: &BranchClassifier,
        order: impl IntoIterator<Item = HeuristicKind>,
        seed: u64,
    ) -> CombinedPredictor {
        let order: Vec<HeuristicKind> = order.into_iter().collect();
        let table = HeuristicTable::build(program, classifier);
        CombinedPredictor::from_table(program, classifier, &table, &order, seed)
    }

    /// Builds the predictor from a precomputed heuristic table (the
    /// ordering experiments construct many predictors from one table).
    pub fn from_table(
        program: &Program,
        classifier: &BranchClassifier,
        table: &HeuristicTable,
        order: &[HeuristicKind],
        seed: u64,
    ) -> CombinedPredictor {
        let mut predictions = Predictions::new();
        let mut attribution = Vec::new();
        for b in program.branches() {
            match classifier.class(b) {
                BranchClass::Loop => {
                    let dir = classifier
                        .loop_prediction(b)
                        .expect("loop branches always have a loop prediction");
                    predictions.set(b, dir);
                    attribution.push((b, Attribution::LoopBranch));
                }
                BranchClass::NonLoop => {
                    let mut chosen = None;
                    for &kind in order {
                        if let Some(dir) = table.prediction(b, kind) {
                            chosen = Some((dir, Attribution::Heuristic(kind)));
                            break;
                        }
                    }
                    let (dir, attr) =
                        chosen.unwrap_or_else(|| (random_direction(b, seed), Attribution::Default));
                    predictions.set(b, dir);
                    attribution.push((b, attr));
                }
            }
        }
        CombinedPredictor {
            predictions,
            attribution,
        }
    }

    /// The complete prediction set (every branch site covered).
    pub fn predictions(&self) -> Predictions {
        self.predictions.clone()
    }

    /// Which rule predicted `branch`.
    ///
    /// # Panics
    ///
    /// Panics if `branch` is not a branch site of the analyzed program.
    pub fn attribution(&self, branch: BranchRef) -> Attribution {
        let i = self
            .attribution
            .binary_search_by_key(&branch, |&(b, _)| b)
            .unwrap_or_else(|_| panic!("{branch} is not a branch site of this program"));
        self.attribution[i].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_ir::{BlockId, FuncId};

    fn br(f: u32, b: u32) -> BranchRef {
        BranchRef {
            func: FuncId(f),
            block: BlockId(b),
        }
    }

    #[test]
    fn random_direction_is_deterministic() {
        let a = random_direction(br(1, 2), DEFAULT_SEED);
        let b = random_direction(br(1, 2), DEFAULT_SEED);
        assert_eq!(a, b);
    }

    #[test]
    fn random_direction_varies_with_seed_and_site() {
        // Over many sites, both directions must appear, and a different
        // seed must change at least one choice.
        let dirs: Vec<Direction> = (0..64)
            .map(|i| random_direction(br(0, i), DEFAULT_SEED))
            .collect();
        assert!(dirs.contains(&Direction::Taken));
        assert!(dirs.contains(&Direction::FallThru));
        let other: Vec<Direction> = (0..64).map(|i| random_direction(br(0, i), 12345)).collect();
        assert_ne!(dirs, other);
    }

    #[test]
    fn random_direction_is_roughly_balanced() {
        let taken = (0..10_000)
            .filter(|&i| random_direction(br(i / 256, i % 256), DEFAULT_SEED) == Direction::Taken)
            .count();
        assert!((4_000..6_000).contains(&taken), "taken = {taken}");
    }

    #[test]
    fn direction_flip_and_match() {
        assert_eq!(Direction::Taken.flip(), Direction::FallThru);
        assert!(Direction::Taken.matches(true));
        assert!(!Direction::Taken.matches(false));
        assert!(Direction::FallThru.matches(false));
    }

    #[test]
    fn predictions_overwrite_and_sort() {
        let mut p = Predictions::new();
        // Out-of-order sets still produce sorted iteration and correct
        // lookups; repeated sets overwrite.
        p.set(br(1, 5), Direction::Taken);
        p.set(br(0, 2), Direction::FallThru);
        p.set(br(1, 5), Direction::FallThru);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(br(1, 5)), Some(Direction::FallThru));
        let order: Vec<BranchRef> = p.iter().map(|(b, _)| b).collect();
        assert_eq!(order, vec![br(0, 2), br(1, 5)]);
        // FromIterator has the same last-wins semantics.
        let q: Predictions = [
            (br(1, 5), Direction::Taken),
            (br(0, 2), Direction::FallThru),
            (br(1, 5), Direction::FallThru),
        ]
        .into_iter()
        .collect();
        assert_eq!(p, q);
    }

    #[test]
    fn naive_predictors_cover_every_branch() {
        let p = bpfree_lang::compile(
            "fn main() -> int {
                int i; int s;
                for (i = 0; i < 3; i = i + 1) { if (i == 1) { s = s + 1; } }
                return s;
            }",
        )
        .unwrap();
        let n = p.branches().len();
        assert_eq!(taken_predictions(&p).len(), n);
        assert_eq!(fallthru_predictions(&p).len(), n);
        assert_eq!(random_predictions(&p, DEFAULT_SEED).len(), n);
        assert_eq!(btfnt_predictions(&p).len(), n);
    }

    #[test]
    fn perfect_predictions_follow_majority() {
        use bpfree_sim::EdgeProfile;
        let p = bpfree_lang::compile(
            "fn main() -> int {
                int i;
                do { i = i + 1; } while (i < 5);
                return i;
            }",
        )
        .unwrap();
        let site = p.branches()[0];
        let mut prof = EdgeProfile::new();
        for _ in 0..10 {
            prof.record(site, true);
        }
        prof.record(site, false);
        let pred = perfect_predictions(&p, &prof);
        assert_eq!(pred.get(site), Some(Direction::Taken));
    }

    #[test]
    fn btfnt_predicts_backward_taken() {
        // do-while: latch branches back to an earlier block -> taken.
        let p = bpfree_lang::compile(
            "fn main() -> int {
                int i;
                do { i = i + 1; } while (i < 5);
                return i;
            }",
        )
        .unwrap();
        let site = p.branches()[0];
        assert_eq!(btfnt_predictions(&p).get(site), Some(Direction::Taken));
    }

    #[test]
    fn combined_covers_all_branches_and_attributes_loop_latch() {
        let src = "fn main() -> int {
            int i; int s;
            for (i = 0; i < 100; i = i + 1) { if (i % 7 == 0) { s = s + 1; } }
            return s;
        }";
        let p = bpfree_lang::compile(src).unwrap();
        let c = BranchClassifier::analyze(&p);
        let cp = CombinedPredictor::new(&p, &c, HeuristicKind::paper_order());
        let preds = cp.predictions();
        assert_eq!(preds.len(), p.branches().len());
        let loop_attrs = p
            .branches()
            .iter()
            .filter(|b| cp.attribution(**b) == Attribution::LoopBranch)
            .count();
        assert_eq!(loop_attrs, 1);
    }
}
