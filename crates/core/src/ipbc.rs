//! Instructions per break in control (Section 6).
//!
//! A *break in control* is a mispredicted branch (our IR has no indirect
//! jumps or indirect calls, the paper's other break sources). Each break
//! `B` defines a sequence of instructions from (but not including) the
//! previous break up to and including `B`; the sequences partition the
//! instruction trace.
//!
//! Following the paper, we record, for `0 <= j < 1000`, the number of
//! sequences whose length lies in `[10j, 10j+9]` (the last bucket absorbs
//! everything ≥ 9990) and the summed length per bucket. From these come:
//!
//! * the **profile-based IPBC average**: total instructions / breaks;
//! * the cumulative distribution of sequence lengths weighted by
//!   instructions (Graphs 4, 6–11) or by breaks (Graph 5);
//! * the **dividing length**: the sequence length at which 50% of
//!   executed instructions are accounted for — the paper's alternative
//!   to the (misleading) IPBC average.
//!
//! Several predictors are measured in a single simulated run by keeping
//! one sequence counter per predictor, replacing materialised trace
//! files.

use std::ops::Range;
use std::sync::Arc;

use bpfree_ir::{BranchRef, Program, Terminator};
use bpfree_sim::{BranchTrace, ExecObserver, SegmentedObserver, SeqSlice, TraceSegment};

use crate::predictors::{Direction, Predictions};

/// Number of histogram buckets (bucket `j` covers lengths `10j..10j+9`).
pub const N_BUCKETS: usize = 1000;

/// Sequence-length statistics for one predictor over one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SequenceDist {
    /// The predictor's display name.
    pub name: String,
    /// Sequences per bucket.
    counts: Vec<u64>,
    /// Summed sequence length per bucket.
    length_sums: Vec<u64>,
    /// Breaks in control (mispredicted branches).
    pub breaks: u64,
    /// Total instructions executed.
    pub total_instructions: u64,
    /// Mispredicted / total conditional branches.
    pub mispredicted: u64,
    /// Total conditional branches executed.
    pub total_branches: u64,
}

impl SequenceDist {
    fn new(name: String) -> SequenceDist {
        SequenceDist {
            name,
            counts: vec![0; N_BUCKETS],
            length_sums: vec![0; N_BUCKETS],
            breaks: 0,
            total_instructions: 0,
            mispredicted: 0,
            total_branches: 0,
        }
    }

    fn record_sequence(&mut self, len: u64) {
        let bucket = ((len / 10) as usize).min(N_BUCKETS - 1);
        self.counts[bucket] += 1;
        self.length_sums[bucket] += len;
    }

    /// The profile-based IPBC average: instructions per break.
    pub fn ipbc_average(&self) -> f64 {
        if self.breaks == 0 {
            self.total_instructions as f64
        } else {
            self.total_instructions as f64 / self.breaks as f64
        }
    }

    /// Overall branch miss rate for this predictor.
    pub fn miss_rate(&self) -> f64 {
        if self.total_branches == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.total_branches as f64
        }
    }

    /// Fraction of executed instructions in sequences of length `< x`
    /// (x in multiples of 10; intermediate values use the bucket floor).
    pub fn cumulative_instructions_below(&self, x: u64) -> f64 {
        if self.total_instructions == 0 {
            return 0.0;
        }
        let bucket = ((x / 10) as usize).min(N_BUCKETS);
        let sum: u64 = self.length_sums[..bucket].iter().sum();
        sum as f64 / self.total_instructions as f64
    }

    /// Fraction of sequences (breaks) of length `< x`.
    pub fn cumulative_breaks_below(&self, x: u64) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let bucket = ((x / 10) as usize).min(N_BUCKETS);
        let sum: u64 = self.counts[..bucket].iter().sum();
        sum as f64 / total as f64
    }

    /// The dividing length: the smallest bucket boundary at which at
    /// least half the executed instructions are in shorter sequences.
    pub fn dividing_length(&self) -> u64 {
        let mut acc = 0u64;
        for (j, &s) in self.length_sums.iter().enumerate() {
            acc += s;
            if acc * 2 >= self.total_instructions {
                return (j as u64 + 1) * 10;
            }
        }
        (N_BUCKETS as u64) * 10
    }

    /// The plot series for the paper's graphs: `(length, cumulative
    /// instruction fraction)` at every bucket boundary up to `max_len`.
    pub fn instruction_cdf(&self, max_len: u64) -> Vec<(u64, f64)> {
        (0..=max_len / 10)
            .map(|j| (j * 10, self.cumulative_instructions_below(j * 10)))
            .collect()
    }

    /// The per-bucket sequence counts (for tests and custom plots).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Dense per-function prediction lookup (`taken?` per block) so the
/// per-branch hot path avoids hashing.
struct DensePredictions {
    per_func: Vec<Vec<Option<bool>>>,
}

impl DensePredictions {
    fn build(program: &Program, predictions: &Predictions) -> DensePredictions {
        let mut per_func: Vec<Vec<Option<bool>>> = program
            .funcs()
            .iter()
            .map(|f| vec![None; f.blocks().len()])
            .collect();
        for fid in program.func_ids() {
            let func = program.func(fid);
            for bid in func.block_ids() {
                if let Terminator::Branch { .. } = func.block(bid).term {
                    let dir = predictions.get(BranchRef {
                        func: fid,
                        block: bid,
                    });
                    per_func[fid.index()][bid.index()] = dir.map(|d| d == Direction::Taken);
                }
            }
        }
        DensePredictions { per_func }
    }

    #[inline]
    fn predicts_taken(&self, branch: BranchRef) -> Option<bool> {
        self.per_func[branch.func.index()][branch.block.index()]
    }
}

/// Streams an execution once while scoring several static predictors'
/// sequence-length distributions simultaneously.
///
/// # Example
///
/// ```
/// use bpfree_core::ipbc::IpbcAnalyzer;
/// use bpfree_core::{perfect_predictions, BranchClassifier};
/// use bpfree_sim::{EdgeProfiler, Simulator};
///
/// let p = bpfree_lang::compile(
///     "fn main() -> int {
///         int i; int s;
///         for (i = 0; i < 200; i = i + 1) { if (i % 3 == 0) { s = s + 1; } }
///         return s;
///     }",
/// ).unwrap();
/// let mut prof = EdgeProfiler::new();
/// Simulator::new(&p).run(&mut prof).unwrap();
/// let profile = prof.into_profile();
///
/// let mut an = IpbcAnalyzer::new(&p);
/// an.add_predictor("Perfect", &perfect_predictions(&p, &profile));
/// Simulator::new(&p).run(&mut an).unwrap();
/// let dists = an.finish();
/// assert!(dists[0].ipbc_average() > 1.0);
/// ```
pub struct IpbcAnalyzer<'p> {
    program: &'p Program,
    dense: Vec<DensePredictions>,
    dists: Vec<SequenceDist>,
    current_len: Vec<u64>,
    fused: Option<Arc<FusedTables>>,
}

impl<'p> IpbcAnalyzer<'p> {
    /// Creates an analyzer for one program.
    pub fn new(program: &'p Program) -> IpbcAnalyzer<'p> {
        IpbcAnalyzer {
            program,
            dense: Vec::new(),
            dists: Vec::new(),
            current_len: Vec::new(),
            fused: None,
        }
    }

    /// Registers a predictor to score. Call before running the simulator.
    pub fn add_predictor(&mut self, name: impl Into<String>, predictions: &Predictions) {
        self.dense
            .push(DensePredictions::build(self.program, predictions));
        self.dists.push(SequenceDist::new(name.into()));
        self.current_len.push(0);
    }

    /// Finalises the distributions, flushing each predictor's trailing
    /// sequence (the tail has no terminating break and is recorded as a
    /// sequence without incrementing the break count).
    pub fn finish(mut self) -> Vec<SequenceDist> {
        for (i, dist) in self.dists.iter_mut().enumerate() {
            if self.current_len[i] > 0 {
                let len = self.current_len[i];
                dist.record_sequence(len);
            }
        }
        self.dists
    }
}

/// Per-trace lookup tables shared (via `Arc`) by every replay segment:
/// for each dictionary entry, its instruction count and a bitmask of
/// which registered predictors mispredict it (predictors beyond 64 go
/// in further mask chunks). Built once in `prepare`, they turn the
/// per-event work of the fused kernel into a single packed array read —
/// no hashing, no observer dispatch, and no per-predictor work on
/// correctly-predicted events.
struct FusedTables {
    /// `entries[d]` = (instruction count, miss mask over the first 64
    /// predictors) of dictionary entry `d`.
    entries: Vec<(u64, u64)>,
    /// `entries` zero-padded to exactly 256 slots when the dictionary
    /// fits (always, in practice). Indexed with the byte-wide sequence
    /// from [`BranchTrace::seq_u8`], a `u8` index into a fixed-size
    /// 256-entry array needs no bounds check in the hot loop.
    packed: Option<Box<[(u64, u64); 256]>>,
    /// Mask chunks for predictors past the first 64 (rare): `extra[c][d]`
    /// has bit `p` set iff predictor `64(c+1) + p` mispredicts entry `d`.
    extra: Vec<Vec<u64>>,
}

fn miss_mask(chunk: &[DensePredictions], e: &bpfree_sim::TraceEvent) -> u64 {
    let mut m = 0u64;
    for (p, d) in chunk.iter().enumerate() {
        if d.predicts_taken(e.branch) != Some(e.taken) {
            m |= 1 << p;
        }
    }
    m
}

impl FusedTables {
    fn build(dense: &[DensePredictions], trace: &BranchTrace) -> FusedTables {
        let dict = trace.dict();
        let first = &dense[..dense.len().min(64)];
        let entries: Vec<(u64, u64)> = dict
            .iter()
            .map(|e| (e.instrs, miss_mask(first, e)))
            .collect();
        let packed = (entries.len() <= 256).then(|| {
            let mut t = Box::new([(0u64, 0u64); 256]);
            t[..entries.len()].copy_from_slice(&entries);
            t
        });
        FusedTables {
            entries,
            packed,
            extra: dense[first.len()..]
                .chunks(64)
                .map(|chunk| dict.iter().map(|e| miss_mask(chunk, e)).collect())
                .collect(),
        }
    }
}

/// One predictor's order-dependent state over one segment. The run that
/// is open when the segment starts cannot be bucketed locally — its
/// total length depends on earlier segments — so the length closed by
/// the *first* break is parked in `first_break` and the still-open tail
/// in `len`; `merge` stitches both across the boundary.
struct SegmentState {
    counts: Vec<u64>,
    length_sums: Vec<u64>,
    breaks: u64,
    first_break: Option<u64>,
    len: u64,
}

impl SegmentState {
    fn new() -> SegmentState {
        SegmentState {
            counts: vec![0; N_BUCKETS],
            length_sums: vec![0; N_BUCKETS],
            breaks: 0,
            first_break: None,
            len: 0,
        }
    }

    fn record_sequence(&mut self, len: u64) {
        let bucket = ((len / 10) as usize).min(N_BUCKETS - 1);
        self.counts[bucket] += 1;
        self.length_sums[bucket] += len;
    }
}

/// The per-worker state of segmented IPBC analysis (see
/// [`SegmentedObserver`]). Replays its slice with the fused kernel: a
/// single event-major scan over precomputed per-dictionary-entry
/// instruction counts and miss bitmasks, instead of per-event
/// [`ExecObserver`] dispatch plus a prediction lookup per predictor.
pub struct IpbcSegment {
    tables: Arc<FusedTables>,
    states: Vec<SegmentState>,
    /// Branch events in this segment (same for every predictor).
    events: u64,
    /// Instructions in this segment (same for every predictor).
    instrs: u64,
}

/// Per-predictor stride of the fused kernel's flat local histogram:
/// a power of two ≥ `N_BUCKETS` so the bucket offset is a shift. Each
/// cell is a `u128` holding the length sum in its high half and the
/// sequence count in its low half, so one break is one read-modify-
/// write; the count side cannot carry into the sums before 2⁶⁴ breaks.
const HIST_SHIFT: usize = 10;
const _: () = assert!(N_BUCKETS <= 1 << HIST_SHIFT);

impl TraceSegment for IpbcSegment {
    fn replay(&mut self, trace: &BranchTrace, range: Range<usize>) {
        let tables = Arc::clone(&self.tables);
        self.events += range.len() as u64;

        // Fast path for the first (almost always only) 64 predictors.
        // Each predictor's open-run length is a distance from one
        // running position: `len_p = pos - start_p`. A correctly-
        // predicted event then costs one packed table read and an add
        // for the whole chunk; breaks walk only the set mask bits and
        // write into a flat shift-indexed histogram, folded back into
        // the (pointer-chasing) `SegmentState`s once at the end. `base`
        // keeps the subtraction in u64 if states carry an open run in
        // from an earlier call.
        //
        // The scan runs in two phases. The *prefix* loop tracks which
        // predictors still owe their first break of the call — that
        // break closes a run that may span the segment boundary, so its
        // length is parked in `first` (bit in `seen`) rather than
        // bucketed. Once every predictor has broken (almost immediately
        // on real traces) the *main* loop drops that test: each break
        // is one unconditional histogram read-modify-write.
        let n = self.states.len().min(64);
        let states = &mut self.states[..n];
        let mut hist = vec![0u128; n << HIST_SHIFT];
        let mut start = [0u64; 64];
        let mut first = [0u64; 64];
        let base: u64 = states.iter().map(|s| s.len).max().unwrap_or(0);
        for (p, st) in states.iter().enumerate() {
            start[p] = base - st.len;
        }
        let mut pos = base;
        let full: u64 = if n == 64 { !0 } else { (1u64 << n) - 1 };
        let mut seen: u64 = 0;

        if let (Some(seq8), Some(packed)) = (trace.seq_u8(), tables.packed.as_deref()) {
            let s = &seq8[range.clone()];
            let mut i = 0;
            while i < s.len() && seen != full {
                let e = packed[s[i] as usize];
                i += 1;
                pos += e.0;
                let mut m = e.1;
                while m != 0 {
                    let p = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let len = pos - start[p];
                    if seen & (1 << p) == 0 {
                        seen |= 1 << p;
                        first[p] = len;
                    } else {
                        let off = (p << HIST_SHIFT) | ((len / 10) as usize).min(N_BUCKETS - 1);
                        // SAFETY: miss masks only set bits below `n`, so
                        // `p < n`, and the bucket is `< 2^HIST_SHIFT`
                        // (const-asserted), so `off < n << HIST_SHIFT`,
                        // the histogram's length.
                        unsafe { *hist.get_unchecked_mut(off) += ((len as u128) << 64) | 1 };
                    }
                    start[p] = pos;
                }
            }
            for &idx in &s[i..] {
                let e = packed[idx as usize];
                pos += e.0;
                let mut m = e.1;
                while m != 0 {
                    let p = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let len = pos - start[p];
                    let off = (p << HIST_SHIFT) | ((len / 10) as usize).min(N_BUCKETS - 1);
                    // SAFETY: as in the prefix loop.
                    unsafe { *hist.get_unchecked_mut(off) += ((len as u128) << 64) | 1 };
                    start[p] = pos;
                }
            }
        } else {
            // Word-wide fallback for dictionaries past 256 entries.
            // Borrowed (image-mounted) traces always have ≤ 256 dict
            // entries, so only owned wide sequences reach here.
            let entries = &tables.entries[..];
            let seq = trace
                .seq_u32()
                .expect("dictionaries past 256 entries use wide sequence storage");
            for &idx in &seq[range.clone()] {
                let e = entries[idx as usize];
                pos += e.0;
                let mut m = e.1;
                while m != 0 {
                    let p = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let len = pos - start[p];
                    if seen & (1 << p) == 0 {
                        seen |= 1 << p;
                        first[p] = len;
                    } else {
                        let off = (p << HIST_SHIFT) | ((len / 10) as usize).min(N_BUCKETS - 1);
                        hist[off] += ((len as u128) << 64) | 1;
                    }
                    start[p] = pos;
                }
            }
        }

        self.instrs += pos - base;
        for (p, st) in states.iter_mut().enumerate() {
            st.len = pos - start[p];
            let mut bucketed = 0u64;
            for bucket in 0..N_BUCKETS {
                let cell = hist[(p << HIST_SHIFT) | bucket];
                st.counts[bucket] += cell as u64;
                st.length_sums[bucket] += (cell >> 64) as u64;
                bucketed += cell as u64;
            }
            if seen & (1 << p) != 0 {
                if st.breaks == 0 {
                    // First break this segment has ever seen: the run it
                    // closed was open at the segment boundary, so park
                    // its length for `merge` to stitch.
                    st.first_break = Some(first[p]);
                } else {
                    st.record_sequence(first[p]);
                }
                st.breaks += 1 + bucketed;
            }
        }

        // Generic path for predictors past the first 64, width-agnostic
        // over the sequence storage (image-mounted traces stream their
        // borrowed byte-wide indices here too).
        fn scan_extra(
            indices: impl Iterator<Item = usize>,
            entries: &[(u64, u64)],
            masks: &[u64],
            states: &mut [SegmentState],
            start: &mut [u64],
            pos: &mut u64,
        ) {
            for i in indices {
                *pos += entries[i].0;
                let mut m = masks[i];
                while m != 0 {
                    let p = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let st = &mut states[p];
                    let len = *pos - start[p];
                    st.breaks += 1;
                    if st.breaks == 1 {
                        st.first_break = Some(len);
                    } else {
                        st.record_sequence(len);
                    }
                    start[p] = *pos;
                }
            }
        }
        for (c, masks) in tables.extra.iter().enumerate() {
            let lo = 64 * (c + 1);
            let hi = (lo + 64).min(self.states.len());
            let states = &mut self.states[lo..hi];
            let base: u64 = states.iter().map(|s| s.len).max().unwrap_or(0);
            let mut pos = base;
            let mut start: Vec<u64> = states.iter().map(|s| base - s.len).collect();
            match trace.seq_slice() {
                SeqSlice::Wide(s) => scan_extra(
                    s[range.clone()].iter().map(|&i| i as usize),
                    &tables.entries,
                    masks,
                    states,
                    &mut start,
                    &mut pos,
                ),
                SeqSlice::Bytes(s) => scan_extra(
                    s[range.clone()].iter().map(|&i| i as usize),
                    &tables.entries,
                    masks,
                    states,
                    &mut start,
                    &mut pos,
                ),
            }
            for (st, &s) in states.iter_mut().zip(&start) {
                st.len = pos - s;
            }
        }
    }
}

impl SegmentedObserver for IpbcAnalyzer<'_> {
    type Segment = IpbcSegment;

    fn prepare(&mut self, trace: &BranchTrace) {
        self.fused = Some(Arc::new(FusedTables::build(&self.dense, trace)));
    }

    fn segment(&self) -> IpbcSegment {
        let tables = self
            .fused
            .as_ref()
            .expect("IpbcAnalyzer::prepare runs before segments are created");
        IpbcSegment {
            tables: Arc::clone(tables),
            states: self.dists.iter().map(|_| SegmentState::new()).collect(),
            events: 0,
            instrs: 0,
        }
    }

    fn merge(&mut self, parts: Vec<IpbcSegment>) {
        for part in parts {
            for (i, state) in part.states.into_iter().enumerate() {
                let dist = &mut self.dists[i];
                dist.total_branches += part.events;
                dist.total_instructions += part.instrs;
                dist.mispredicted += state.breaks;
                dist.breaks += state.breaks;
                for (bucket, (&c, &s)) in state.counts.iter().zip(&state.length_sums).enumerate() {
                    dist.counts[bucket] += c;
                    dist.length_sums[bucket] += s;
                }
                match state.first_break {
                    // The segment's first break closed the run that was
                    // open across the boundary: its full length is the
                    // parent's open tail plus the segment's prefix.
                    Some(first) => {
                        dist.record_sequence(self.current_len[i] + first);
                        self.current_len[i] = state.len;
                    }
                    // Break-free segment: the open run just grows.
                    None => self.current_len[i] += state.len,
                }
            }
        }
    }
}

impl ExecObserver for IpbcAnalyzer<'_> {
    fn on_instrs(&mut self, count: u64) {
        for (i, dist) in self.dists.iter_mut().enumerate() {
            dist.total_instructions += count;
            self.current_len[i] += count;
        }
    }

    fn on_branch(&mut self, branch: BranchRef, taken: bool) {
        for i in 0..self.dists.len() {
            let dist = &mut self.dists[i];
            dist.total_branches += 1;
            let correct = match self.dense[i].predicts_taken(branch) {
                Some(p) => p == taken,
                None => false,
            };
            if !correct {
                dist.mispredicted += 1;
                dist.breaks += 1;
                let len = self.current_len[i];
                dist.record_sequence(len);
                self.current_len[i] = 0;
            }
        }
    }
}
