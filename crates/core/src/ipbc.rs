//! Instructions per break in control (Section 6).
//!
//! A *break in control* is a mispredicted branch (our IR has no indirect
//! jumps or indirect calls, the paper's other break sources). Each break
//! `B` defines a sequence of instructions from (but not including) the
//! previous break up to and including `B`; the sequences partition the
//! instruction trace.
//!
//! Following the paper, we record, for `0 <= j < 1000`, the number of
//! sequences whose length lies in `[10j, 10j+9]` (the last bucket absorbs
//! everything ≥ 9990) and the summed length per bucket. From these come:
//!
//! * the **profile-based IPBC average**: total instructions / breaks;
//! * the cumulative distribution of sequence lengths weighted by
//!   instructions (Graphs 4, 6–11) or by breaks (Graph 5);
//! * the **dividing length**: the sequence length at which 50% of
//!   executed instructions are accounted for — the paper's alternative
//!   to the (misleading) IPBC average.
//!
//! Several predictors are measured in a single simulated run by keeping
//! one sequence counter per predictor, replacing materialised trace
//! files.

use bpfree_ir::{BranchRef, Program, Terminator};
use bpfree_sim::ExecObserver;

use crate::predictors::{Direction, Predictions};

/// Number of histogram buckets (bucket `j` covers lengths `10j..10j+9`).
pub const N_BUCKETS: usize = 1000;

/// Sequence-length statistics for one predictor over one run.
#[derive(Debug, Clone)]
pub struct SequenceDist {
    /// The predictor's display name.
    pub name: String,
    /// Sequences per bucket.
    counts: Vec<u64>,
    /// Summed sequence length per bucket.
    length_sums: Vec<u64>,
    /// Breaks in control (mispredicted branches).
    pub breaks: u64,
    /// Total instructions executed.
    pub total_instructions: u64,
    /// Mispredicted / total conditional branches.
    pub mispredicted: u64,
    pub total_branches: u64,
}

impl SequenceDist {
    fn new(name: String) -> SequenceDist {
        SequenceDist {
            name,
            counts: vec![0; N_BUCKETS],
            length_sums: vec![0; N_BUCKETS],
            breaks: 0,
            total_instructions: 0,
            mispredicted: 0,
            total_branches: 0,
        }
    }

    fn record_sequence(&mut self, len: u64) {
        let bucket = ((len / 10) as usize).min(N_BUCKETS - 1);
        self.counts[bucket] += 1;
        self.length_sums[bucket] += len;
    }

    /// The profile-based IPBC average: instructions per break.
    pub fn ipbc_average(&self) -> f64 {
        if self.breaks == 0 {
            self.total_instructions as f64
        } else {
            self.total_instructions as f64 / self.breaks as f64
        }
    }

    /// Overall branch miss rate for this predictor.
    pub fn miss_rate(&self) -> f64 {
        if self.total_branches == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.total_branches as f64
        }
    }

    /// Fraction of executed instructions in sequences of length `< x`
    /// (x in multiples of 10; intermediate values use the bucket floor).
    pub fn cumulative_instructions_below(&self, x: u64) -> f64 {
        if self.total_instructions == 0 {
            return 0.0;
        }
        let bucket = ((x / 10) as usize).min(N_BUCKETS);
        let sum: u64 = self.length_sums[..bucket].iter().sum();
        sum as f64 / self.total_instructions as f64
    }

    /// Fraction of sequences (breaks) of length `< x`.
    pub fn cumulative_breaks_below(&self, x: u64) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let bucket = ((x / 10) as usize).min(N_BUCKETS);
        let sum: u64 = self.counts[..bucket].iter().sum();
        sum as f64 / total as f64
    }

    /// The dividing length: the smallest bucket boundary at which at
    /// least half the executed instructions are in shorter sequences.
    pub fn dividing_length(&self) -> u64 {
        let mut acc = 0u64;
        for (j, &s) in self.length_sums.iter().enumerate() {
            acc += s;
            if acc * 2 >= self.total_instructions {
                return (j as u64 + 1) * 10;
            }
        }
        (N_BUCKETS as u64) * 10
    }

    /// The plot series for the paper's graphs: `(length, cumulative
    /// instruction fraction)` at every bucket boundary up to `max_len`.
    pub fn instruction_cdf(&self, max_len: u64) -> Vec<(u64, f64)> {
        (0..=max_len / 10)
            .map(|j| (j * 10, self.cumulative_instructions_below(j * 10)))
            .collect()
    }

    /// The per-bucket sequence counts (for tests and custom plots).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Dense per-function prediction lookup (`taken?` per block) so the
/// per-branch hot path avoids hashing.
struct DensePredictions {
    per_func: Vec<Vec<Option<bool>>>,
}

impl DensePredictions {
    fn build(program: &Program, predictions: &Predictions) -> DensePredictions {
        let mut per_func: Vec<Vec<Option<bool>>> = program
            .funcs()
            .iter()
            .map(|f| vec![None; f.blocks().len()])
            .collect();
        for fid in program.func_ids() {
            let func = program.func(fid);
            for bid in func.block_ids() {
                if let Terminator::Branch { .. } = func.block(bid).term {
                    let dir = predictions.get(BranchRef {
                        func: fid,
                        block: bid,
                    });
                    per_func[fid.index()][bid.index()] = dir.map(|d| d == Direction::Taken);
                }
            }
        }
        DensePredictions { per_func }
    }

    #[inline]
    fn predicts_taken(&self, branch: BranchRef) -> Option<bool> {
        self.per_func[branch.func.index()][branch.block.index()]
    }
}

/// Streams an execution once while scoring several static predictors'
/// sequence-length distributions simultaneously.
///
/// # Example
///
/// ```
/// use bpfree_core::ipbc::IpbcAnalyzer;
/// use bpfree_core::{perfect_predictions, BranchClassifier};
/// use bpfree_sim::{EdgeProfiler, Simulator};
///
/// let p = bpfree_lang::compile(
///     "fn main() -> int {
///         int i; int s;
///         for (i = 0; i < 200; i = i + 1) { if (i % 3 == 0) { s = s + 1; } }
///         return s;
///     }",
/// ).unwrap();
/// let mut prof = EdgeProfiler::new();
/// Simulator::new(&p).run(&mut prof).unwrap();
/// let profile = prof.into_profile();
///
/// let mut an = IpbcAnalyzer::new(&p);
/// an.add_predictor("Perfect", &perfect_predictions(&p, &profile));
/// Simulator::new(&p).run(&mut an).unwrap();
/// let dists = an.finish();
/// assert!(dists[0].ipbc_average() > 1.0);
/// ```
pub struct IpbcAnalyzer<'p> {
    program: &'p Program,
    dense: Vec<DensePredictions>,
    dists: Vec<SequenceDist>,
    current_len: Vec<u64>,
}

impl<'p> IpbcAnalyzer<'p> {
    /// Creates an analyzer for one program.
    pub fn new(program: &'p Program) -> IpbcAnalyzer<'p> {
        IpbcAnalyzer {
            program,
            dense: Vec::new(),
            dists: Vec::new(),
            current_len: Vec::new(),
        }
    }

    /// Registers a predictor to score. Call before running the simulator.
    pub fn add_predictor(&mut self, name: impl Into<String>, predictions: &Predictions) {
        self.dense
            .push(DensePredictions::build(self.program, predictions));
        self.dists.push(SequenceDist::new(name.into()));
        self.current_len.push(0);
    }

    /// Finalises the distributions, flushing each predictor's trailing
    /// sequence (the tail has no terminating break and is recorded as a
    /// sequence without incrementing the break count).
    pub fn finish(mut self) -> Vec<SequenceDist> {
        for (i, dist) in self.dists.iter_mut().enumerate() {
            if self.current_len[i] > 0 {
                let len = self.current_len[i];
                dist.record_sequence(len);
            }
        }
        self.dists
    }
}

impl ExecObserver for IpbcAnalyzer<'_> {
    fn on_instrs(&mut self, count: u64) {
        for (i, dist) in self.dists.iter_mut().enumerate() {
            dist.total_instructions += count;
            self.current_len[i] += count;
        }
    }

    fn on_branch(&mut self, branch: BranchRef, taken: bool) {
        for i in 0..self.dists.len() {
            let dist = &mut self.dists[i];
            dist.total_branches += 1;
            let correct = match self.dense[i].predicts_taken(branch) {
                Some(p) => p == taken,
                None => false,
            };
            if !correct {
                dist.mispredicted += 1;
                dist.breaks += 1;
                let len = self.current_len[i];
                dist.record_sequence(len);
                self.current_len[i] = 0;
            }
        }
    }
}
