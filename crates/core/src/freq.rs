//! Program-based execution-frequency estimation.
//!
//! The paper's related work cites Wall's study of *estimated profiles*
//! (predicting how often program components execute, rather than which
//! way branches go) — Wall reported poor results for his estimator. The
//! natural follow-on (later developed by Wu & Larus, MICRO 1994) is to
//! turn the Ball–Larus predictions into branch *probabilities* and
//! propagate them through the CFG to get relative block frequencies.
//! This module implements that pipeline so the reproduction can answer
//! how far the heuristics go as a profile estimator.
//!
//! Per function: every branch gets a taken-probability from its
//! [`Attribution`] (loop branches iterate with high probability;
//! heuristic-predicted branches follow the prediction with the combined
//! heuristic's empirical hit rate; Default branches are 50/50). Block
//! frequencies then solve the flow equations `freq(entry) = 1`,
//! `freq(b) = Σ freq(p)·prob(p→b)` by damped iteration — convergent
//! because every cycle's probability product is below one.

use bpfree_ir::{BlockId, BranchRef, FuncId, Program, Terminator};

use crate::classify::BranchClassifier;
use crate::predictors::{Attribution, CombinedPredictor, Direction};

/// Taken-edge probabilities per branch site, stored as a sorted
/// association list (built in program order, queried by binary search).
#[derive(Debug, Clone, Default)]
pub struct BranchProbabilities {
    entries: Vec<(BranchRef, f64)>,
}

/// Confidence assigned to each prediction source when converting
/// predictions to probabilities.
#[derive(Debug, Clone, Copy)]
pub struct Confidence {
    /// Probability a loop branch follows the loop predictor's edge
    /// (the paper's loop predictor missed ~12%).
    pub loop_branch: f64,
    /// Probability a heuristic-predicted branch follows the prediction
    /// (the paper's combined heuristic missed ~26% of non-loop branches).
    pub heuristic: f64,
    /// Probability for Default-predicted branches.
    pub default: f64,
}

impl Default for Confidence {
    fn default() -> Confidence {
        Confidence {
            loop_branch: 0.88,
            heuristic: 0.74,
            default: 0.5,
        }
    }
}

impl Confidence {
    /// Calibrates confidences empirically from profiled runs: the
    /// observed hit rate of the loop predictor on loop branches and of
    /// the heuristics on the branches they predicted. Pass the
    /// `(predictor, profile, classifier)` triples of a training suite.
    ///
    /// This is how Wu & Larus later derived their branch probabilities:
    /// measure each heuristic's accuracy once, on any corpus, and reuse
    /// the numbers forever after.
    pub fn calibrate<'a>(
        runs: impl IntoIterator<
            Item = (
                &'a CombinedPredictor,
                &'a bpfree_sim::EdgeProfile,
                &'a BranchClassifier,
            ),
        >,
    ) -> Confidence {
        let mut loop_hits = 0u64;
        let mut loop_total = 0u64;
        let mut heur_hits = 0u64;
        let mut heur_total = 0u64;
        for (predictor, profile, classifier) in runs {
            let predictions = predictor.predictions();
            for (branch, _) in classifier.branches() {
                let counts = profile.counts(branch);
                if counts.total() == 0 {
                    continue;
                }
                let Some(dir) = predictions.get(branch) else {
                    continue;
                };
                let hits = match dir {
                    Direction::Taken => counts.taken,
                    Direction::FallThru => counts.fallthru,
                };
                match predictor.attribution(branch) {
                    Attribution::LoopBranch => {
                        loop_hits += hits;
                        loop_total += counts.total();
                    }
                    Attribution::Heuristic(_) => {
                        heur_hits += hits;
                        heur_total += counts.total();
                    }
                    Attribution::Default => {}
                }
            }
        }
        let ratio = |h: u64, t: u64, fallback: f64| {
            if t == 0 {
                fallback
            } else {
                // Clamp away from 0/1 so loop frequencies stay finite.
                (h as f64 / t as f64).clamp(0.05, 0.98)
            }
        };
        Confidence {
            loop_branch: ratio(loop_hits, loop_total, 0.88),
            heuristic: ratio(heur_hits, heur_total, 0.74),
            default: 0.5,
        }
    }
}

impl BranchProbabilities {
    /// Converts a combined predictor's choices into probabilities.
    pub fn from_predictor(
        program: &Program,
        predictor: &CombinedPredictor,
        confidence: Confidence,
    ) -> BranchProbabilities {
        let predictions = predictor.predictions();
        let mut entries = Vec::new();
        for b in program.branches() {
            let conf = match predictor.attribution(b) {
                Attribution::LoopBranch => confidence.loop_branch,
                Attribution::Heuristic(_) => confidence.heuristic,
                Attribution::Default => confidence.default,
            };
            let p_taken = match predictions.get(b) {
                Some(Direction::Taken) => conf,
                Some(Direction::FallThru) => 1.0 - conf,
                None => 0.5,
            };
            entries.push((b, p_taken));
        }
        BranchProbabilities { entries }
    }

    /// The probability that `branch` takes its taken edge (0.5 if
    /// unknown).
    pub fn taken(&self, branch: BranchRef) -> f64 {
        self.entries
            .binary_search_by_key(&branch, |&(b, _)| b)
            .map(|i| self.entries[i].1)
            .unwrap_or(0.5)
    }

    /// Overrides one branch's probability (for what-if analyses).
    ///
    /// # Panics
    ///
    /// Panics if `p_taken` is outside `[0, 1]`.
    pub fn set(&mut self, branch: BranchRef, p_taken: f64) {
        assert!(
            (0.0..=1.0).contains(&p_taken),
            "probability {p_taken} out of range"
        );
        match self.entries.binary_search_by_key(&branch, |&(b, _)| b) {
            Ok(i) => self.entries[i].1 = p_taken,
            Err(i) => self.entries.insert(i, (branch, p_taken)),
        }
    }
}

/// Estimated relative block frequencies for one function (entry = 1.0).
#[derive(Debug, Clone)]
pub struct BlockFrequencies {
    freqs: Vec<f64>,
}

impl BlockFrequencies {
    /// The estimated frequency of `b` relative to one function entry.
    pub fn get(&self, b: BlockId) -> f64 {
        self.freqs[b.index()]
    }

    /// All frequencies, indexed by block.
    pub fn as_slice(&self) -> &[f64] {
        &self.freqs
    }
}

/// Solves the flow equations for one function by damped Jacobi
/// iteration. Backedge contributions are capped so pathological
/// probability assignments still converge.
pub fn estimate_block_frequencies(
    program: &Program,
    func: FuncId,
    probs: &BranchProbabilities,
) -> BlockFrequencies {
    let f = program.func(func);
    let n = f.blocks().len();
    // Incoming edges: (pred, probability of the pred->b edge).
    let mut incoming: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for bid in f.block_ids() {
        match &f.block(bid).term {
            Terminator::Jump(t) => incoming[t.index()].push((bid.index(), 1.0)),
            Terminator::Branch {
                taken, fallthru, ..
            } => {
                let p = probs.taken(BranchRef { func, block: bid });
                incoming[taken.index()].push((bid.index(), p));
                incoming[fallthru.index()].push((bid.index(), 1.0 - p));
            }
            Terminator::Ret { .. } => {}
        }
    }
    let mut freqs = vec![0.0f64; n];
    freqs[0] = 1.0;
    // Iterate; loops amplify frequencies geometrically and the products
    // are < 1, so this converges. Each Jacobi round moves flow one edge,
    // so deep loop nests need rounds proportional to the expected path
    // length; 20k rounds with an early exit bounds the cost.
    for _ in 0..20_000 {
        let mut next = vec![0.0f64; n];
        next[0] = 1.0;
        for b in 0..n {
            for &(p, prob) in &incoming[b] {
                next[b] += freqs[p] * prob;
            }
        }
        let delta: f64 = next.iter().zip(&freqs).map(|(a, b)| (a - b).abs()).sum();
        freqs = next;
        if delta < 1e-9 {
            break;
        }
    }
    BlockFrequencies { freqs }
}

/// Structural frequency propagation (Wu & Larus, MICRO 1994): process
/// natural loops innermost-first, compute each loop's *cyclic
/// probability* (the probability of returning to the head per entry),
/// and scale the head's incoming frequency by `1/(1 - cp)`. Exact for
/// reducible CFGs in one pass, vs. the damped iteration of
/// [`estimate_block_frequencies`]; the `freq_propagation` bench and the
/// equivalence test keep the two honest against each other.
pub fn estimate_block_frequencies_structural(
    program: &Program,
    func: FuncId,
    probs: &BranchProbabilities,
    classifier: &BranchClassifier,
) -> BlockFrequencies {
    let f = program.func(func);
    let analysis = classifier.analysis(program, func);
    let n = f.blocks().len();

    // Out-edges with probabilities.
    let mut out_edges: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for bid in f.block_ids() {
        match &f.block(bid).term {
            Terminator::Jump(t) => out_edges[bid.index()].push((t.index(), 1.0)),
            Terminator::Branch {
                taken, fallthru, ..
            } => {
                let p = probs.taken(BranchRef { func, block: bid });
                out_edges[bid.index()].push((taken.index(), p));
                out_edges[bid.index()].push((fallthru.index(), 1.0 - p));
            }
            Terminator::Ret { .. } => {}
        }
    }

    // Cyclic probability per loop head, innermost loops first (heads
    // sorted by decreasing nesting depth; `heads()` iterates in
    // ascending block order, so ties resolve deterministically).
    let mut heads: Vec<_> = analysis.loops.heads().collect();
    heads.sort_by_key(|h| std::cmp::Reverse(analysis.loops.depth(*h)));
    let mut cyclic: Vec<Option<f64>> = vec![None; n];

    for head in heads {
        // Propagate a unit of flow from the head through the loop body
        // (already-solved inner loops amplify by their own factor), and
        // accumulate what returns along the backedges.
        let body = &analysis
            .loops
            .natural_loop(head)
            .expect("head has a loop")
            .body;
        let mut flow = vec![0.0f64; n];
        flow[head.index()] = 1.0;
        // Process body blocks in reverse postorder so each block's inflow
        // is complete before it distributes (reducible loops only).
        let order: Vec<usize> = analysis
            .dfs
            .reverse_postorder()
            .iter()
            .map(|b| b.index())
            .filter(|b| body.contains(bpfree_ir::BlockId(*b as u32)))
            .collect();
        let mut back_in = 0.0f64;
        for &b in &order {
            let mut amount = flow[b];
            if b != head.index() {
                if amount == 0.0 {
                    continue;
                }
                // An inner loop head multiplies flow by its trip factor.
                if let Some(cp) = cyclic[b] {
                    amount /= (1.0 - cp).max(0.02);
                    flow[b] = amount;
                }
            }
            for &(dst, p) in &out_edges[b] {
                let contribution = amount * p;
                if dst == head.index() {
                    back_in += contribution;
                } else if body.contains(bpfree_ir::BlockId(dst as u32)) {
                    flow[dst] += contribution;
                }
            }
        }
        cyclic[head.index()] = Some(back_in.min(0.98));
    }

    // Final acyclic pass over the whole function: RPO, amplifying at
    // loop heads, ignoring backedges (their effect is in the factor).
    let mut freqs = vec![0.0f64; n];
    freqs[0] = 1.0;
    for b in analysis.dfs.reverse_postorder() {
        let bi = b.index();
        let mut amount = freqs[bi];
        if let Some(cp) = cyclic[bi] {
            amount /= (1.0 - cp).max(0.02);
            freqs[bi] = amount;
        }
        if amount == 0.0 {
            continue;
        }
        for &(dst, p) in &out_edges[bi] {
            // Skip backedges: already folded into the cyclic factor.
            if analysis
                .loops
                .is_backedge(*b, bpfree_ir::BlockId(dst as u32))
            {
                continue;
            }
            freqs[dst] += amount * p;
        }
    }
    BlockFrequencies { freqs }
}

/// Spearman rank correlation between two paired samples — the metric for
/// "does the estimator order hot blocks like the real profile does".
///
/// # Panics
///
/// Panics if the slices differ in length.
///
/// # Example
///
/// ```
/// use bpfree_core::freq::spearman;
/// let r = spearman(&[1.0, 2.0, 3.0], &[10.0, 20.0, 30.0]);
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "paired samples must match");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    // Pearson correlation of the ranks (handles ties via average ranks).
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (ma, mb) = (mean(&ra), mean(&rb));
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for i in 0..n {
        let da = ra[i] - ma;
        let db = rb[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    cov / (va.sqrt() * vb.sqrt())
}

fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("finite values"));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Estimated frequencies for every branch block of a program, flattened
/// into a sorted `(branch, frequency)` list for comparison against a
/// profile.
#[derive(Debug, Clone, Default)]
pub struct BranchFrequencies {
    entries: Vec<(BranchRef, f64)>,
}

impl BranchFrequencies {
    /// The estimated frequency of `branch`'s block.
    ///
    /// # Panics
    ///
    /// Panics if `branch` is not a branch site of the estimated program.
    pub fn get(&self, branch: BranchRef) -> f64 {
        let i = self
            .entries
            .binary_search_by_key(&branch, |&(b, _)| b)
            .unwrap_or_else(|_| panic!("{branch} is not a branch site of this program"));
        self.entries[i].1
    }

    /// Iterator over `(branch, frequency)` pairs in program order.
    pub fn iter(&self) -> impl Iterator<Item = (BranchRef, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of branch sites estimated.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the program had no branch sites.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Convenience: estimated frequencies for every branch block of a
/// program, flattened for comparison against a profile.
pub fn estimate_branch_block_frequencies(
    program: &Program,
    classifier: &BranchClassifier,
    predictor: &CombinedPredictor,
    confidence: Confidence,
) -> BranchFrequencies {
    let _ = classifier;
    let probs = BranchProbabilities::from_predictor(program, predictor, confidence);
    let mut entries = Vec::new();
    for fid in program.func_ids() {
        let freqs = estimate_block_frequencies(program, fid, &probs);
        for bid in program.func(fid).block_ids() {
            if program.func(fid).block(bid).term.is_branch() {
                entries.push((
                    BranchRef {
                        func: fid,
                        block: bid,
                    },
                    freqs.get(bid),
                ));
            }
        }
    }
    BranchFrequencies { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::BranchClassifier;
    use crate::heuristics::HeuristicKind;

    fn setup(src: &str) -> (bpfree_ir::Program, BranchClassifier, CombinedPredictor) {
        let p = bpfree_lang::compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let c = BranchClassifier::analyze(&p);
        let cp = CombinedPredictor::new(&p, &c, HeuristicKind::paper_order());
        (p, c, cp)
    }

    #[test]
    fn straight_line_blocks_have_unit_frequency() {
        let (p, _, cp) = setup("fn main() -> int { int x; x = 3; return x; }");
        let probs = BranchProbabilities::from_predictor(&p, &cp, Confidence::default());
        let f = estimate_block_frequencies(&p, p.entry(), &probs);
        assert!((f.get(BlockId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn branch_splits_frequency() {
        let (p, _, cp) = setup(
            "fn main() -> int {
                int x; int y;
                x = 5;
                if (x == 3) { y = 1; } else { y = 2; }
                return y;
            }",
        );
        let probs = BranchProbabilities::from_predictor(&p, &cp, Confidence::default());
        let f = estimate_block_frequencies(&p, p.entry(), &probs);
        let func = p.func(p.entry());
        // The two arms' frequencies sum to the entry frequency, and the
        // join is back to ~1.
        let branch = func
            .block_ids()
            .find(|b| func.block(*b).term.is_branch())
            .expect("has a branch");
        if let Terminator::Branch {
            taken, fallthru, ..
        } = func.block(branch).term
        {
            let sum = f.get(taken) + f.get(fallthru);
            assert!((sum - f.get(branch)).abs() < 1e-6, "sum {sum}");
        }
    }

    #[test]
    fn loop_bodies_amplify_frequency() {
        let (p, _, cp) = setup(
            "fn main() -> int {
                int i; int s;
                for (i = 0; i < 100; i = i + 1) { s = s + i; }
                return s;
            }",
        );
        let probs = BranchProbabilities::from_predictor(&p, &cp, Confidence::default());
        let f = estimate_block_frequencies(&p, p.entry(), &probs);
        let func = p.func(p.entry());
        // Some block (the loop body) should have frequency well above 1:
        // with p_back = 0.88 the geometric sum is ~1/(1-0.88) ≈ 8.3.
        let max = func.block_ids().map(|b| f.get(b)).fold(0.0f64, f64::max);
        assert!(max > 4.0, "max frequency {max}");
        assert!(max < 20.0, "diverged: {max}");
    }

    #[test]
    fn estimates_rank_hot_blocks_like_the_profile() {
        use bpfree_sim::{EdgeProfiler, Simulator};
        let src = "global int acc;
        fn main() -> int {
            int i; int j;
            for (i = 0; i < 40; i = i + 1) {
                for (j = 0; j < 40; j = j + 1) {
                    if ((i + j) % 7 == 0) { acc = acc + 1; }
                }
            }
            return acc;
        }";
        let (p, c, cp) = setup(src);
        let mut prof = EdgeProfiler::new();
        Simulator::new(&p).run(&mut prof).unwrap();
        let profile = prof.into_profile();

        let est = estimate_branch_block_frequencies(&p, &c, &cp, Confidence::default());
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for (b, freq) in est.iter() {
            let counts = profile.counts(b);
            if counts.total() > 0 {
                pairs.push((freq, counts.total() as f64));
            }
        }
        let (a, b): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let rho = spearman(&a, &b);
        assert!(rho > 0.7, "rank correlation {rho}");
    }

    #[test]
    fn structural_matches_iterative_on_the_suite_shapes() {
        // Nested loops, branches in bodies, early exits: the two solvers
        // must agree closely on every block.
        let src = "global int acc;
        fn main() -> int {
            int i; int j; int k;
            for (i = 0; i < 20; i = i + 1) {
                if (i % 4 == 0) { acc = acc + 1; }
                for (j = 0; j < 10; j = j + 1) {
                    if (j > 7) { acc = acc + 2; }
                    k = 0;
                    do { k = k + 1; } while (k < 3);
                }
            }
            return acc;
        }";
        let (p, c, cp) = setup(src);
        let probs = BranchProbabilities::from_predictor(&p, &cp, Confidence::default());
        let fid = p.entry();
        let iterative = estimate_block_frequencies(&p, fid, &probs);
        let structural = estimate_block_frequencies_structural(&p, fid, &probs, &c);
        for b in p.func(fid).block_ids() {
            let (a, s) = (iterative.get(b), structural.get(b));
            let scale = a.abs().max(s.abs()).max(1.0);
            assert!(
                (a - s).abs() / scale < 0.02,
                "block {b}: iterative {a} vs structural {s}"
            );
        }
    }

    #[test]
    fn calibration_learns_hit_rates() {
        use bpfree_sim::{EdgeProfiler, Simulator};
        let src = "global int acc;
        fn main() -> int {
            int i;
            for (i = 0; i < 200; i = i + 1) {
                if (i % 10 == 0) { acc = acc + 1; }
            }
            return acc;
        }";
        let (p, c, cp) = setup(src);
        let mut prof = EdgeProfiler::new();
        Simulator::new(&p).run(&mut prof).unwrap();
        let profile = prof.into_profile();
        let conf = Confidence::calibrate([(&cp, &profile, &c)]);
        // The latch iterates 199/200: loop confidence learned high.
        assert!(conf.loop_branch > 0.9, "loop {}", conf.loop_branch);
        assert!((0.05..=0.98).contains(&conf.heuristic));
        assert_eq!(conf.default, 0.5);
    }

    #[test]
    fn spearman_basics() {
        assert!((spearman(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(spearman(&[1.0], &[2.0]), 0.0);
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn out_of_range_probability_panics() {
        let mut p = BranchProbabilities::default();
        p.set(
            BranchRef {
                func: bpfree_ir::FuncId(0),
                block: BlockId(0),
            },
            1.5,
        );
    }
}
