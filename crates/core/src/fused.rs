//! O(dict) fused predictor evaluation — the tally tier.
//!
//! Every paper predictor is *static*: per-site and history-free, so
//! whether one trace event is mispredicted depends only on its
//! dictionary entry, never on its position in the sequence. All
//! order-independent aggregates — misprediction totals, edge profiles,
//! IPBC *averages* — therefore factor through the per-dictionary-entry
//! occurrence counts of [`BranchTrace::tally`], and evaluating a
//! predictor costs one O(dict) pass (hundreds of ops) instead of an
//! O(events) replay (millions), with bit-identical integer totals.
//!
//! Only the IPBC sequence-length *distributions* are order-dependent;
//! those go through segmented replay (`ipbc`, DESIGN.md §8) instead.

use bpfree_sim::BranchTrace;

use crate::predictors::Predictions;

/// Order-independent evaluation totals for one predictor over one
/// trace, computed in O(dict). The integer fields are bit-identical to
/// what a serial [`BranchTrace::replay`] through
/// [`IpbcAnalyzer`](crate::ipbc::IpbcAnalyzer) accumulates, and the
/// derived rates use the same formulas as
/// [`SequenceDist`](crate::ipbc::SequenceDist), so reports built from
/// either tier print identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TallyEval {
    /// Mispredicted conditional branch executions.
    pub mispredicted: u64,
    /// Total conditional branch executions.
    pub total_branches: u64,
    /// Breaks in control (equals `mispredicted`: conditional branches
    /// are the only break source in our IR).
    pub breaks: u64,
    /// Total dynamic instructions.
    pub total_instructions: u64,
}

impl TallyEval {
    /// Overall branch miss rate (same formula as
    /// [`SequenceDist::miss_rate`](crate::ipbc::SequenceDist::miss_rate)).
    pub fn miss_rate(&self) -> f64 {
        if self.total_branches == 0 {
            0.0
        } else {
            self.mispredicted as f64 / self.total_branches as f64
        }
    }

    /// The profile-based IPBC average (same formula as
    /// [`SequenceDist::ipbc_average`](crate::ipbc::SequenceDist::ipbc_average)).
    pub fn ipbc_average(&self) -> f64 {
        if self.breaks == 0 {
            self.total_instructions as f64
        } else {
            self.total_instructions as f64 / self.breaks as f64
        }
    }
}

/// Scores one static predictor against a trace in O(dict): every
/// dictionary entry is judged once and weighted by its occurrence
/// count. A branch with no prediction counts as mispredicted, matching
/// `IpbcAnalyzer`.
pub fn evaluate_trace(predictions: &Predictions, trace: &BranchTrace) -> TallyEval {
    let tally = trace.tally();
    let mut mispredicted = 0u64;
    let mut total_branches = 0u64;
    for (event, &count) in trace.dict().iter().zip(tally.counts()) {
        total_branches += count;
        let correct = match predictions.get(event.branch) {
            Some(dir) => dir.matches(event.taken),
            None => false,
        };
        if !correct {
            mispredicted += count;
        }
    }
    TallyEval {
        mispredicted,
        total_branches,
        breaks: mispredicted,
        total_instructions: tally.instructions(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipbc::IpbcAnalyzer;
    use crate::predictors::Direction;
    use bpfree_sim::{ExecObserver, TraceRecorder};

    #[test]
    fn tally_eval_matches_serial_replay() {
        let program = bpfree_lang::compile(
            "fn main() -> int {
                int i; int s;
                for (i = 0; i < 100; i = i + 1) {
                    if (i % 7 == 0) { s = s + 2; } else { s = s - 1; }
                }
                return s;
            }",
        )
        .unwrap();

        // Record a trace of the real execution.
        let mut rec = TraceRecorder::new();
        bpfree_sim::Simulator::new(&program).run(&mut rec).unwrap();
        let trace = rec.into_trace();

        // An arbitrary (partial) prediction set: everything taken,
        // except one branch left unpredicted.
        let mut predictions = Predictions::new();
        let mut sites: Vec<_> = trace.dict().iter().map(|e| e.branch).collect();
        sites.sort();
        sites.dedup();
        for (i, &site) in sites.iter().enumerate() {
            if i % 3 != 2 {
                predictions.set(site, Direction::Taken);
            }
        }

        let fused = evaluate_trace(&predictions, &trace);

        let mut analyzer = IpbcAnalyzer::new(&program);
        analyzer.add_predictor("p", &predictions);
        trace.replay(&mut analyzer);
        let dist = analyzer.finish().remove(0);

        assert_eq!(fused.mispredicted, dist.mispredicted);
        assert_eq!(fused.total_branches, dist.total_branches);
        assert_eq!(fused.breaks, dist.breaks);
        assert_eq!(fused.total_instructions, dist.total_instructions);
        assert_eq!(fused.miss_rate(), dist.miss_rate());
        assert_eq!(fused.ipbc_average(), dist.ipbc_average());
    }

    #[test]
    fn empty_trace_evaluates_to_zeroes() {
        let mut rec = TraceRecorder::new();
        rec.on_instrs(5);
        let trace = rec.into_trace();
        let eval = evaluate_trace(&Predictions::new(), &trace);
        assert_eq!(eval.total_branches, 0);
        assert_eq!(eval.miss_rate(), 0.0);
        assert_eq!(eval.total_instructions, 5);
        assert_eq!(eval.ipbc_average(), 5.0);
    }
}
