//! Program-based static branch prediction, after Ball & Larus,
//! *Branch Prediction for Free* (PLDI 1993).
//!
//! The pipeline, mirroring the paper's sections:
//!
//! 1. [`BranchClassifier`] splits conditional branches into **loop
//!    branches** (an outgoing edge is a natural-loop backedge or exit
//!    edge) and **non-loop branches**, and predicts loop branches with
//!    the loop predictor (Section 3);
//! 2. the seven non-loop [`heuristics`] — Opcode, Loop, Call, Return,
//!    Guard, Store, Pointer (Section 4);
//! 3. [`CombinedPredictor`] applies the heuristics in a priority order,
//!    with a deterministic pseudo-random **Default** for uncovered
//!    branches (Section 5);
//! 4. [`evaluate`] scores any [`Predictions`] against an edge profile,
//!    reporting miss rates in the paper's `C/D` (predictor/perfect)
//!    notation;
//! 5. [`ordering`] reruns the paper's 7! ordering study and the
//!    C(22,11) subset-stability experiment;
//! 6. [`ipbc`] measures instructions per break in control from streamed
//!    traces (Section 6), and [`model`] evaluates the closed-form
//!    sequence-length model of Graph 12.
//!
//! # Example
//!
//! ```
//! use bpfree_core::{
//!     evaluate, BranchClassifier, CombinedPredictor, HeuristicKind,
//! };
//! use bpfree_sim::{EdgeProfiler, Simulator};
//!
//! let program = bpfree_lang::compile(
//!     "fn main() -> int {
//!         int i; int s;
//!         for (i = 0; i < 1000; i = i + 1) {
//!             if (i % 10 == 0) { s = s + 1; }
//!         }
//!         return s;
//!     }",
//! ).unwrap();
//!
//! let mut profiler = EdgeProfiler::new();
//! Simulator::new(&program).run(&mut profiler).unwrap();
//! let profile = profiler.into_profile();
//!
//! let classifier = BranchClassifier::analyze(&program);
//! let predictor =
//!     CombinedPredictor::new(&program, &classifier, HeuristicKind::paper_order());
//! let report = evaluate(&predictor.predictions(), &profile, &classifier);
//! assert!(report.all.miss_rate() < 0.5);
//! ```

#![deny(missing_docs)]

mod classify;
mod eval;
pub mod freq;
mod fused;
pub mod heuristics;
pub mod ipbc;
pub mod model;
pub mod ordering;
mod predictors;

pub use classify::{BranchClass, BranchClassifier};
pub use eval::{
    evaluate, evaluate_coverage, evaluate_with_attribution, AttributedReport, ClassStats,
    CoverageStats, Report, SourceBreakdown,
};
pub use fused::{evaluate_trace, TallyEval};
pub use heuristics::ext::ExtKind;
pub use heuristics::{HeuristicKind, HeuristicTable};
pub use predictors::{
    btfnt_predictions, fallthru_predictions, loop_rand_predictions, perfect_predictions,
    random_predictions, taken_predictions, Attribution, CombinedPredictor, Direction, Predictions,
    DEFAULT_SEED,
};
