//! The paper's heuristic-ordering experiments (Section 5).
//!
//! The combined predictor applies the seven heuristics in a priority
//! order, so the order matters. The paper studies:
//!
//! * all 7! = 5040 orders, sorted by average non-loop miss rate
//!   (Graph 1);
//! * for every 11-element subset of 22 benchmarks, the order minimising
//!   the subset's average miss rate — C(22,11) = 705,432 trials — and how
//!   often each winning order recurs (Graphs 2–3, Table 4);
//! * a cheaper pairwise-comparison construction of an order.
//!
//! Evaluating an order against a benchmark does not require re-running
//! heuristics: each non-loop branch is summarised by its applicability
//! row and dynamic counts ([`BenchOrderData`]), and identical rows are
//! grouped. The subset experiment additionally Pareto-prunes orders (an
//! order that is dominated on every benchmark can never be an argmin).

use bpfree_sim::EdgeProfile;

use crate::classify::{BranchClass, BranchClassifier};
use crate::heuristics::{HeuristicKind, HeuristicTable};
use crate::predictors::{random_direction, Direction};

/// A heuristic priority order (a permutation of the seven kinds).
pub type Order = [HeuristicKind; 7];

/// All 5040 orders, generated in lexicographic index order.
///
/// # Example
///
/// ```
/// let orders = bpfree_core::ordering::all_orders();
/// assert_eq!(orders.len(), 5040);
/// ```
pub fn all_orders() -> Vec<Order> {
    let mut out = Vec::with_capacity(5040);
    let mut items = HeuristicKind::ALL;
    permute(&mut items, 0, &mut out);
    out
}

fn permute(items: &mut Order, k: usize, out: &mut Vec<Order>) {
    if k == items.len() {
        out.push(*items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, out);
        items.swap(k, i);
    }
}

/// Streaming enumerator of the k-element subsets of `{0, .., n-1}` in
/// lexicographic order, startable at any rank — the workhorse of the
/// C(22,11) subset experiment, where workers each enumerate a contiguous
/// rank range independently.
///
/// Subsets are visited via [`KSubsets::for_each_subset`] (no per-item
/// allocation) or the [`Iterator`] implementation (clones each subset).
///
/// # Example
///
/// ```
/// use bpfree_core::ordering::KSubsets;
/// assert_eq!(KSubsets::count(4, 2), 6);
/// let all: Vec<Vec<usize>> = KSubsets::all(4, 2).collect();
/// assert_eq!(all[0], [0, 1]);
/// assert_eq!(all[5], [2, 3]);
/// // Ranks 2.. of the same enumeration:
/// let tail: Vec<Vec<usize>> = KSubsets::range(4, 2, 2, 4).collect();
/// assert_eq!(all[2..], tail[..]);
/// ```
#[derive(Debug, Clone)]
pub struct KSubsets {
    subset: Vec<usize>,
    n: usize,
    k: usize,
    remaining: u64,
    /// True until the first `advance()`, which yields the start subset.
    fresh: bool,
}

impl KSubsets {
    /// All `C(n, k)` subsets, first to last.
    pub fn all(n: usize, k: usize) -> KSubsets {
        KSubsets::range(n, k, 0, KSubsets::count(n, k))
    }

    /// `len` subsets starting at lexicographic rank `start`.
    ///
    /// # Panics
    ///
    /// Panics if `k > n` or the range overruns `C(n, k)`.
    pub fn range(n: usize, k: usize, start: u64, len: u64) -> KSubsets {
        assert!(k <= n, "subset size {k} exceeds {n} elements");
        let total = KSubsets::count(n, k);
        assert!(
            start.checked_add(len).is_some_and(|end| end <= total),
            "rank range {start}+{len} overruns C({n},{k}) = {total}"
        );
        KSubsets {
            subset: KSubsets::unrank(n, k, start),
            n,
            k,
            remaining: len,
            fresh: true,
        }
    }

    /// `C(n, k)`, saturating at `u64::MAX` for astronomically large
    /// spaces (the experiments stay far below it).
    pub fn count(n: usize, k: usize) -> u64 {
        if k > n {
            return 0;
        }
        let k = k.min(n - k);
        let mut c: u128 = 1;
        for i in 0..k {
            c = c * (n - i) as u128 / (i + 1) as u128;
            if c > u64::MAX as u128 {
                return u64::MAX;
            }
        }
        c as u64
    }

    /// The subset at lexicographic rank `rank` (combinatorial number
    /// system).
    fn unrank(n: usize, k: usize, mut rank: u64) -> Vec<usize> {
        let mut subset = Vec::with_capacity(k);
        let mut v = 0usize;
        for slot in 0..k {
            loop {
                // Subsets starting with `v` at this slot.
                let block = KSubsets::count(n - 1 - v, k - 1 - slot);
                if rank < block {
                    break;
                }
                rank -= block;
                v += 1;
            }
            subset.push(v);
            v += 1;
        }
        subset
    }

    /// Advances to the next subset; `false` when the range is exhausted.
    /// The first call yields the range's start subset unchanged.
    fn advance(&mut self) -> bool {
        self.advance_from().is_some()
    }

    /// Advances to the next subset, reporting the **first changed slot**:
    /// slots `0..slot` are unchanged from the previous subset, slots
    /// `slot..k` are new. The first call yields the range's start subset
    /// with slot 0 (everything is "new"). `None` when exhausted.
    ///
    /// This is what makes prefix-reuse summation possible: a consumer
    /// keeping per-slot partial results only recomputes from `slot`.
    fn advance_from(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        if self.fresh {
            self.fresh = false;
            return Some(0);
        }
        // Lexicographic successor: bump the rightmost bumpable slot and
        // reset everything after it.
        let (n, k) = (self.n, self.k);
        for i in (0..k).rev() {
            if self.subset[i] != i + n - k {
                self.subset[i] += 1;
                for j in i + 1..k {
                    self.subset[j] = self.subset[j - 1] + 1;
                }
                return Some(i);
            }
        }
        unreachable!("range length was validated against C(n, k)")
    }

    /// Streams every subset in the range to `f` without allocating per
    /// item.
    pub fn for_each_subset(mut self, mut f: impl FnMut(&[usize])) {
        while self.advance() {
            f(&self.subset);
        }
    }

    /// Like [`KSubsets::for_each_subset`], but also passes the first
    /// slot that changed since the previous subset (0 on the first
    /// yield). Because enumeration is lexicographic, slots before it are
    /// a shared prefix with the previous subset.
    pub fn for_each_subset_from(mut self, mut f: impl FnMut(&[usize], usize)) {
        while let Some(slot) = self.advance_from() {
            f(&self.subset, slot);
        }
    }
}

/// The prefix-reuse subset sweep: for each of the `len` k-subsets of
/// `{0..n-1}` starting at lexicographic rank `start`, find the candidate
/// with the minimal rate sum over the subset (first strict minimum wins
/// ties) and bump its `wins` tally.
///
/// `cols` is benchmark-major: `cols[b][ci]` is candidate `ci`'s rate on
/// benchmark `b`, so extending every candidate's partial sum by one
/// benchmark is a single contiguous vector add. A per-slot stack of
/// partial-sum vectors is kept across subsets; the lexicographic
/// successor only changes slots from the first bumped one, so only
/// those rows are recomputed — amortized ~1 vector add per subset
/// instead of `k`.
///
/// Each `partial[slot]` entry is built as the exact left-to-right fold
/// `(((0.0 + r₀) + r₁) + …)` the naive per-candidate gather loop
/// computes, so every sum — and therefore every winner — is
/// bit-identical to the naive sweep.
pub fn subset_sweep_wins(
    cols: &[Vec<f64>],
    n: usize,
    k: usize,
    start: u64,
    len: u64,
    wins: &mut [u64],
) {
    let c = wins.len();
    debug_assert!(cols.len() == n && cols.iter().all(|col| col.len() == c));
    // partial[slot * c + ci]: candidate ci's rate sum over the current
    // subset's first slot+1 benchmarks.
    let mut partial = vec![0.0f64; k * c];
    KSubsets::range(n, k, start, len).for_each_subset_from(|subset, from| {
        for slot in from..k {
            let col = &cols[subset[slot]][..c];
            if slot == 0 {
                for (dst, &r) in partial[..c].iter_mut().zip(col) {
                    *dst = 0.0 + r;
                }
            } else {
                let (prev, cur) = partial.split_at_mut(slot * c);
                let prev = &prev[(slot - 1) * c..];
                for (ci, dst) in cur[..c].iter_mut().enumerate() {
                    *dst = prev[ci] + col[ci];
                }
            }
        }
        let sums = &partial[(k - 1) * c..];
        let mut best = 0usize;
        let mut best_rate = f64::INFINITY;
        for (ci, &s) in sums.iter().enumerate() {
            if s < best_rate {
                best_rate = s;
                best = ci;
            }
        }
        wins[best] += 1;
    });
}

/// `size_hint` for a remaining count that may exceed `usize`: an exact
/// `(r, Some(r))` when it fits, an explicit `(usize::MAX, None)` (lower
/// bound saturated, upper bound unknown) when it does not — on 32-bit
/// targets a `u64` count can genuinely overflow `usize`, and claiming an
/// exact truncated upper bound there would be a lie.
fn saturating_size_hint(remaining: u128) -> (usize, Option<usize>) {
    match usize::try_from(remaining) {
        Ok(r) => (r, Some(r)),
        Err(_) => (usize::MAX, None),
    }
}

impl Iterator for KSubsets {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.advance() {
            Some(self.subset.clone())
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        saturating_size_hint(u128::from(self.remaining))
    }
}

/// One benchmark's non-loop branches, condensed for fast order
/// evaluation. Branches with identical heuristic rows and default
/// directions are merged.
///
/// `PartialEq` compares the condensed content (name, groups, totals) —
/// what the on-disk ordering cache entry revalidates against a freshly
/// condensed live copy before trusting its persisted rate matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchOrderData {
    /// The benchmark's name.
    pub name: String,
    groups: Vec<Group>,
    total_dynamic: u64,
}

/// The behavioural signature of one condensed branch group: which
/// heuristics apply, what they predict, and the Default fallback. Two
/// branches with the same key are indistinguishable to *every* order,
/// so their dynamic counts merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupKey {
    /// Bit `i` set: heuristic with index `i` applies.
    pub applies: u8,
    /// Bit `i` set: that heuristic predicts Taken.
    pub predicts_taken: u8,
    /// The random Default prediction for this branch.
    pub default_taken: bool,
}

/// One condensed branch group: its [`GroupKey`] plus the summed dynamic
/// edge counts of every branch sharing that key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Group {
    /// The group's behavioural signature.
    pub key: GroupKey,
    /// Dynamic taken-edge executions across the group's branches.
    pub taken: u64,
    /// Dynamic fall-through executions across the group's branches.
    pub fallthru: u64,
}

/// A per-order first-hit table: for every 7-bit applies mask, the
/// single-bit mask of the **first** heuristic in the order that
/// applies (0 when none does and the Default decides). Turns the 7-way
/// scan inside the order-evaluation inner loop into one table load.
pub struct FirstHit([u8; 128]);

impl FirstHit {
    /// Builds the table for `order` by running the first-hit scan once
    /// per possible applies mask.
    pub fn new(order: &[HeuristicKind]) -> FirstHit {
        let mut table = [0u8; 128];
        for (mask, slot) in table.iter_mut().enumerate() {
            for kind in order {
                let bit = 1u8 << kind.index();
                if mask as u8 & bit != 0 {
                    *slot = bit;
                    break;
                }
            }
        }
        FirstHit(table)
    }

    /// The first-hit bit for `applies` (0 when no heuristic applies).
    #[inline]
    pub fn hit(&self, applies: u8) -> u8 {
        self.0[usize::from(applies & 0x7f)]
    }
}

impl BenchOrderData {
    /// Condenses one benchmark run, scanning the table's dense
    /// program-order rows.
    pub fn build(
        name: impl Into<String>,
        table: &HeuristicTable,
        profile: &EdgeProfile,
        classifier: &BranchClassifier,
        seed: u64,
    ) -> BenchOrderData {
        use std::collections::HashMap;
        let mut groups: HashMap<GroupKey, (u64, u64)> = HashMap::new();
        let mut total = 0u64;
        for (branch, row) in table.rows() {
            debug_assert_eq!(classifier.class(branch), BranchClass::NonLoop);
            let counts = profile.counts(branch);
            if counts.total() == 0 {
                continue;
            }
            let mut applies = 0u8;
            let mut predicts_taken = 0u8;
            for (i, pred) in row.iter().enumerate() {
                if let Some(dir) = pred {
                    applies |= 1 << i;
                    if *dir == Direction::Taken {
                        predicts_taken |= 1 << i;
                    }
                }
            }
            let key = GroupKey {
                applies,
                predicts_taken,
                default_taken: random_direction(branch, seed) == Direction::Taken,
            };
            let e = groups.entry(key).or_default();
            e.0 += counts.taken;
            e.1 += counts.fallthru;
            total += counts.total();
        }
        let mut groups: Vec<Group> = groups
            .into_iter()
            .map(|(key, (taken, fallthru))| Group {
                key,
                taken,
                fallthru,
            })
            .collect();
        groups.sort_by_key(|g| (g.key.applies, g.key.predicts_taken, g.key.default_taken));
        BenchOrderData {
            name: name.into(),
            groups,
            total_dynamic: total,
        }
    }

    /// Reassembles condensed data from its parts (the warm path of the
    /// on-disk ordering cache). The caller is responsible for the
    /// grouping invariants; [`BenchOrderData::build`] output compared
    /// via `==` is how the cache validates them.
    pub fn from_parts(name: String, groups: Vec<Group>, total_dynamic: u64) -> BenchOrderData {
        BenchOrderData {
            name,
            groups,
            total_dynamic,
        }
    }

    /// The condensed groups, sorted by key.
    pub fn groups(&self) -> &[Group] {
        &self.groups
    }

    /// Dynamic non-loop branch executions in this benchmark.
    pub fn total_dynamic(&self) -> u64 {
        self.total_dynamic
    }

    /// The non-loop miss rate of the combined heuristic restricted to
    /// `order` (Default included) — accepts partial orders, so ablations
    /// can score six-element or single-heuristic priority lists against
    /// the same condensed data.
    pub fn miss_rate(&self, order: &[HeuristicKind]) -> f64 {
        if self.total_dynamic == 0 {
            return 0.0;
        }
        let mut misses = 0u64;
        for g in &self.groups {
            let mut dir = None;
            for kind in order {
                let bit = 1u8 << kind.index();
                if g.key.applies & bit != 0 {
                    dir = Some(g.key.predicts_taken & bit != 0);
                    break;
                }
            }
            let taken_pred = dir.unwrap_or(g.key.default_taken);
            misses += if taken_pred { g.fallthru } else { g.taken };
        }
        misses as f64 / self.total_dynamic as f64
    }

    /// [`BenchOrderData::miss_rate`] with the order's first-hit scan
    /// replaced by one [`FirstHit`] table load per group. The miss sum
    /// is the same exact `u64`, so the returned rate is bit-identical.
    pub fn miss_rate_first_hit(&self, first_hit: &FirstHit) -> f64 {
        if self.total_dynamic == 0 {
            return 0.0;
        }
        let mut misses = 0u64;
        for g in &self.groups {
            let bit = first_hit.hit(g.key.applies);
            let taken_pred = if bit == 0 {
                g.key.default_taken
            } else {
                g.key.predicts_taken & bit != 0
            };
            misses += if taken_pred { g.fallthru } else { g.taken };
        }
        misses as f64 / self.total_dynamic as f64
    }
}

/// The full ordering study over a set of benchmarks.
#[derive(Debug)]
pub struct OrderingStudy {
    benches: Vec<BenchOrderData>,
    orders: Vec<Order>,
    /// `rates[o][b]` = miss rate of order `o` on benchmark `b`.
    rates: Vec<Vec<f64>>,
    /// Lazily computed Pareto front (order indices, ascending), shared
    /// by every consumer so Table 4's stderr report and the subset
    /// experiment prune exactly once.
    pareto: std::sync::OnceLock<Vec<usize>>,
}

/// One row of the Table 4 output: a winning order, how many subset
/// trials it won, and its overall average miss rate.
#[derive(Debug, Clone)]
pub struct CommonOrder {
    /// The winning order's heuristic labels, highest priority first.
    pub order: Vec<String>,
    /// Number of subset trials this order won.
    pub trials: u64,
    /// `trials` over the total trial count.
    pub trial_fraction: f64,
    /// The order's average miss rate over **all** benchmarks.
    pub mean_miss_rate: f64,
}

impl OrderingStudy {
    /// Precomputes the 5040 × n-benchmarks miss-rate matrix, one order
    /// per parallel task ([`bpfree_par::jobs`] workers; the result is
    /// identical at any worker count since rows land in order). Each
    /// task builds the order's [`FirstHit`] table once and resolves
    /// every group with a single load instead of the 7-way scan — the
    /// summed misses are the same exact `u64`s, so the matrix is
    /// bit-identical to mapping [`BenchOrderData::miss_rate`].
    pub fn new(benches: Vec<BenchOrderData>) -> OrderingStudy {
        let orders = all_orders();
        let rates = bpfree_par::par_map(&orders, |o| {
            let first_hit = FirstHit::new(o);
            benches
                .iter()
                .map(|b| b.miss_rate_first_hit(&first_hit))
                .collect()
        });
        OrderingStudy::from_parts(benches, rates)
    }

    /// [`OrderingStudy::new`] without the parallel fan-out: the same
    /// matrix, row by row on the calling thread (bit-identical, since
    /// the parallel build is element-wise identical to serial).
    ///
    /// For callers constructing the study while holding a memoization
    /// slot — the pool's scope wait helps with *any* queued task, so a
    /// nested parallel wait there could steal a task that re-enters
    /// the same slot on the same thread and deadlock. The engine's
    /// roster-level ordering memo builds through this path.
    pub fn new_serial(benches: Vec<BenchOrderData>) -> OrderingStudy {
        let orders = all_orders();
        let rates = orders
            .iter()
            .map(|o| {
                let first_hit = FirstHit::new(o);
                benches
                    .iter()
                    .map(|b| b.miss_rate_first_hit(&first_hit))
                    .collect()
            })
            .collect();
        OrderingStudy::from_parts(benches, rates)
    }

    /// Assembles a study from an already-computed rate matrix (the warm
    /// path of the on-disk ordering cache).
    ///
    /// # Panics
    ///
    /// Panics unless `rates` is 5040 rows of `benches.len()` columns —
    /// the cache layer validates dimensions *before* calling this.
    pub fn from_parts(benches: Vec<BenchOrderData>, rates: Vec<Vec<f64>>) -> OrderingStudy {
        let orders = all_orders();
        assert_eq!(rates.len(), orders.len(), "one rate row per order");
        assert!(
            rates.iter().all(|r| r.len() == benches.len()),
            "one rate column per benchmark"
        );
        OrderingStudy {
            benches,
            orders,
            rates,
            pareto: std::sync::OnceLock::new(),
        }
    }

    /// The benchmarks in this study.
    pub fn benches(&self) -> &[BenchOrderData] {
        &self.benches
    }

    /// All orders, parallel to the rate matrix.
    pub fn orders(&self) -> &[Order] {
        &self.orders
    }

    /// The full miss-rate matrix: `rates()[o][b]` = miss rate of order
    /// `o` on benchmark `b`.
    pub fn rates(&self) -> &[Vec<f64>] {
        &self.rates
    }

    /// Average miss rate (equal benchmark weight) of order index `o`.
    pub fn average_rate(&self, o: usize) -> f64 {
        let row = &self.rates[o];
        row.iter().sum::<f64>() / row.len().max(1) as f64
    }

    /// Graph 1: all orders' average miss rates, sorted ascending.
    pub fn sorted_average_rates(&self) -> Vec<f64> {
        let mut v: Vec<f64> = (0..self.orders.len())
            .map(|o| self.average_rate(o))
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("miss rates are finite"));
        v
    }

    /// The order with the minimum average miss rate over all benchmarks.
    pub fn best_order(&self) -> (Order, f64) {
        let (o, _) = (0..self.orders.len())
            .map(|o| (o, self.average_rate(o)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("5040 orders is never empty");
        (self.orders[o], self.average_rate(o))
    }

    /// Pareto-prunes order indices: keeps only orders not dominated by
    /// another order on every benchmark (ties broken toward the earlier
    /// index, which also deduplicates identical rows). The scan runs
    /// serially on the calling thread: it resolves under the study's
    /// `OnceLock`, and a parallel wait inside that lock could steal a
    /// pool task that re-enters [`OrderingStudy::pareto_front`] on the
    /// same thread and deadlock — the mean-pruned scan is cheap enough
    /// that parallelism buys nothing here anyway.
    ///
    /// The scan is mean-pruned: a dominator of `i` has a rate `<=
    /// i`'s on every benchmark, and f64 addition (round-to-nearest) is
    /// monotone in each argument, so summing both rows in the identical
    /// left-to-right column order gives `mean(j) <= mean(i)` for every
    /// dominator `j`. Candidates are therefore checked only against the
    /// mean-sorted prefix up to their own mean instead of all 5039
    /// others — the kept set is provably the full scan's.
    pub fn pareto_order_indices(&self) -> Vec<usize> {
        self.pareto_front().to_vec()
    }

    /// [`OrderingStudy::pareto_order_indices`], computed once per study
    /// and cached.
    pub fn pareto_front(&self) -> &[usize] {
        self.pareto.get_or_init(|| self.compute_pareto())
    }

    fn compute_pareto(&self) -> Vec<usize> {
        let n = self.orders.len();
        let means: Vec<f64> = (0..n).map(|o| self.average_rate(o)).collect();
        let mut by_mean: Vec<usize> = (0..n).collect();
        by_mean.sort_by(|&a, &b| {
            means[a]
                .partial_cmp(&means[b])
                .expect("miss rates are finite")
                .then(a.cmp(&b))
        });
        (0..n)
            .filter(|&i| {
                // No dominator lives past i's own mean, so only the
                // prefix of `by_mean` up to that point needs checking.
                // Scan it backward: a dominated order's dominators are
                // usually near-identical orders whose means sit just
                // below its own, so the descending scan hits one within
                // a few steps, while the ascending scan wades through
                // the globally-best rows first.
                let prefix = by_mean.partition_point(|&j| means[j] <= means[i]);
                for &j in by_mean[..prefix].iter().rev() {
                    if i == j {
                        continue;
                    }
                    let dominates = self.rates[j]
                        .iter()
                        .zip(&self.rates[i])
                        .all(|(rj, ri)| rj <= ri)
                        && (self.rates[j] != self.rates[i] || j < i);
                    if dominates {
                        return false;
                    }
                }
                true
            })
            .collect()
    }

    /// The C(n, k) subset experiment: for every k-subset of benchmarks,
    /// find the order minimising the subset's average miss rate; count
    /// how often each order wins. Returns winners sorted by frequency
    /// (descending), with the overall (all-benchmark) mean rate attached.
    ///
    /// Uses Pareto pruning; exact over all subsets. The combination
    /// space is split into contiguous rank ranges enumerated
    /// independently per worker with per-worker `wins` tallies summed at
    /// the end — every subset's winner is scheduling-independent, so the
    /// result is bit-identical to the serial enumeration at any thread
    /// count.
    ///
    /// The inner loop is the prefix-reuse kernel
    /// ([`subset_sweep_wins`]): consecutive lexicographic subsets share
    /// a prefix, so per-slot partial-sum vectors over benchmark-major
    /// transposed candidate columns are recomputed only from the first
    /// bumped slot — amortized ~1 contiguous vector add per subset
    /// instead of `k` gathered adds per candidate. Every partial sum is
    /// exactly the left-to-right prefix of the naive per-candidate
    /// summation, so sums, argmins, and tallies are all bit-identical.
    pub fn subset_experiment(&self, k: usize) -> Vec<CommonOrder> {
        let candidates = self.pareto_front();
        let n = self.benches.len();
        assert!(k >= 1, "subset size must be at least 1");
        assert!(k <= n, "subset size {k} exceeds {n} benchmarks");
        // Benchmark-major transposed candidate rates: cols[b][ci], so
        // adding benchmark b to every candidate's partial sum is one
        // contiguous vector add.
        let cols: Vec<Vec<f64>> = (0..n)
            .map(|b| candidates.iter().map(|&o| self.rates[o][b]).collect())
            .collect();
        let trials = KSubsets::count(n, k);

        let wins = bpfree_par::par_fold_chunks(
            trials,
            || vec![0u64; candidates.len()],
            |range, mut wins| {
                let len = range.end - range.start;
                subset_sweep_wins(&cols, n, k, range.start, len, &mut wins);
                wins
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        )
        .unwrap_or_else(|| vec![0u64; candidates.len()]);

        let mut out: Vec<CommonOrder> = candidates
            .iter()
            .zip(&wins)
            .filter(|(_, &w)| w > 0)
            .map(|(&o, &w)| CommonOrder {
                order: self.orders[o].iter().map(|k| k.label().into()).collect(),
                trials: w,
                trial_fraction: w as f64 / trials as f64,
                mean_miss_rate: self.average_rate(o),
            })
            .collect();
        out.sort_by_key(|w| std::cmp::Reverse(w.trials));
        out
    }

    /// Monte-Carlo variant of [`OrderingStudy::subset_experiment`]:
    /// samples `n_samples` random k-subsets (seeded, deterministic)
    /// instead of enumerating all of them, and — unlike the exact
    /// version — scans **all** 5040 orders rather than the Pareto front,
    /// serving as the ablation baseline for the pruning optimisation.
    pub fn subset_experiment_sampled(
        &self,
        k: usize,
        n_samples: u64,
        seed: u64,
    ) -> Vec<CommonOrder> {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let n = self.benches.len();
        assert!(k >= 1 && k <= n, "bad subset size {k} of {n}");
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        // Dense tally indexed by order, so equal-trial winners list in
        // ascending order index (the stable sort below preserves it).
        let mut wins = vec![0u64; self.orders.len()];
        let mut indices: Vec<usize> = (0..n).collect();
        for _ in 0..n_samples {
            indices.shuffle(&mut rng);
            let subset = &indices[..k];
            let mut best = 0usize;
            let mut best_rate = f64::INFINITY;
            for (o, rates) in self.rates.iter().enumerate() {
                let sum: f64 = subset.iter().map(|&b| rates[b]).sum();
                if sum < best_rate {
                    best_rate = sum;
                    best = o;
                }
            }
            wins[best] += 1;
        }
        let mut out: Vec<CommonOrder> = wins
            .into_iter()
            .enumerate()
            .filter(|&(_, w)| w > 0)
            .map(|(o, w)| CommonOrder {
                order: self.orders[o].iter().map(|k| k.label().into()).collect(),
                trials: w,
                trial_fraction: w as f64 / n_samples as f64,
                mean_miss_rate: self.average_rate(o),
            })
            .collect();
        out.sort_by_key(|w| std::cmp::Reverse(w.trials));
        out
    }

    /// The paper's cheaper pairwise construction: order heuristics by
    /// comparing each pair on the branches where both apply, then sort by
    /// net wins. Takes borrowed artifacts — callers pass the engine's
    /// shared tables and profiles instead of rebuilding or cloning them.
    pub fn pairwise_order(benches: &[(&HeuristicTable, &EdgeProfile)]) -> Order {
        let mut score = [0i64; 7];
        for a in HeuristicKind::ALL {
            for b in HeuristicKind::ALL {
                if a.index() >= b.index() {
                    continue;
                }
                let mut misses_a = 0u64;
                let mut misses_b = 0u64;
                for (table, profile) in benches {
                    for (branch, row) in table.rows() {
                        let counts = profile.counts(branch);
                        let (Some(da), Some(db)) = (row[a.index()], row[b.index()]) else {
                            continue;
                        };
                        misses_a += if da == Direction::Taken {
                            counts.fallthru
                        } else {
                            counts.taken
                        };
                        misses_b += if db == Direction::Taken {
                            counts.fallthru
                        } else {
                            counts.taken
                        };
                    }
                }
                // The heuristic with fewer misses on the intersection
                // should come first.
                if misses_a < misses_b {
                    score[a.index()] += 1;
                    score[b.index()] -= 1;
                } else if misses_b < misses_a {
                    score[b.index()] += 1;
                    score[a.index()] -= 1;
                }
            }
        }
        let mut order = HeuristicKind::ALL;
        order.sort_by_key(|k| -score[k.index()]);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::DEFAULT_SEED;
    use bpfree_sim::{EdgeProfiler, Simulator};

    fn bench_data(name: &str, src: &str) -> (BenchOrderData, HeuristicTable, EdgeProfile) {
        let p = bpfree_lang::compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let mut prof = EdgeProfiler::new();
        Simulator::new(&p).run(&mut prof).unwrap();
        let profile = prof.into_profile();
        let c = BranchClassifier::analyze(&p);
        let t = HeuristicTable::build(&p, &c);
        let d = BenchOrderData::build(name, &t, &profile, &c, DEFAULT_SEED);
        (d, t, profile)
    }

    const SRC: &str = "global int log[4];
    fn work(int x) -> int {
        if (x < 0) { return -1; }
        if (x % 3 == 0) { log[0] = x; }
        return x;
    }
    fn main() -> int {
        int i; int s;
        for (i = 0; i < 60; i = i + 1) { s = s + work(i); }
        return s;
    }";

    #[test]
    fn all_orders_are_distinct_permutations() {
        let orders = all_orders();
        assert_eq!(orders.len(), 5040);
        let set: std::collections::HashSet<Order> = orders.iter().copied().collect();
        assert_eq!(set.len(), 5040);
        for o in &orders {
            let mut v = o.to_vec();
            v.sort();
            assert_eq!(v, HeuristicKind::ALL.to_vec());
        }
    }

    #[test]
    fn miss_rate_is_between_zero_and_one_for_every_order() {
        let (d, _, _) = bench_data("t", SRC);
        assert!(d.total_dynamic() > 0);
        for o in all_orders() {
            let r = d.miss_rate(&o);
            assert!((0.0..=1.0).contains(&r), "rate {r}");
        }
    }

    #[test]
    fn order_matters_or_rates_are_constant() {
        let (d, _, _) = bench_data("t", SRC);
        let rates: Vec<f64> = all_orders().iter().map(|o| d.miss_rate(o)).collect();
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0, f64::max);
        // With opcode + store + guard heuristics disagreeing on SRC's
        // branches, some order difference should show up.
        assert!(max >= min);
    }

    #[test]
    fn study_best_order_is_minimal() {
        let (d1, _, _) = bench_data("a", SRC);
        let (d2, _, _) = bench_data(
            "b",
            "fn main() -> int {
                int i; int s;
                for (i = 0; i < 40; i = i + 1) {
                    if (i - 20 > 0) { s = s + 2; } else { s = s + 1; }
                }
                return s;
            }",
        );
        let study = OrderingStudy::new(vec![d1, d2]);
        let (_, best_rate) = study.best_order();
        let sorted = study.sorted_average_rates();
        assert!((sorted[0] - best_rate).abs() < 1e-12);
        assert_eq!(sorted.len(), 5040);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pareto_front_contains_best_order_for_each_benchmark() {
        let (d1, _, _) = bench_data("a", SRC);
        let (d2, _, _) = bench_data(
            "b",
            "global int m[2];
            fn main() -> int {
                int i;
                for (i = 0; i < 30; i = i + 1) {
                    if (i % 2 == 0) { m[0] = i; }
                }
                return m[0];
            }",
        );
        let study = OrderingStudy::new(vec![d1, d2]);
        let front = study.pareto_order_indices();
        assert!(!front.is_empty());
        assert!(front.len() <= 5040);
        // The global best must be on the front.
        let best = (0..5040)
            .min_by(|&a, &b| {
                study
                    .average_rate(a)
                    .partial_cmp(&study.average_rate(b))
                    .unwrap()
            })
            .unwrap();
        let best_rate = study.average_rate(best);
        assert!(
            front
                .iter()
                .any(|&o| (study.average_rate(o) - best_rate).abs() < 1e-12),
            "pareto front lost the best order"
        );
    }

    #[test]
    fn subset_experiment_counts_all_trials() {
        let sources = [
            ("a", SRC),
            (
                "b",
                "fn main() -> int {
                    int i; int s;
                    for (i = 0; i < 25; i = i + 1) { if (i > 20) { s = s + 1; } }
                    return s;
                }",
            ),
            (
                "c",
                "global int g[4];
                fn main() -> int {
                    int i;
                    for (i = 0; i < 16; i = i + 1) { if (i % 4 == 0) { g[1] = i; } }
                    return g[1];
                }",
            ),
            (
                "d",
                "fn f(ptr p) -> int { if (p == null) { return 0; } return p[0]; }
                fn main() -> int {
                    ptr q; int s; int i;
                    q = alloc(1); q[0] = 5;
                    for (i = 0; i < 12; i = i + 1) { s = s + f(q); }
                    return s;
                }",
            ),
        ];
        let benches: Vec<BenchOrderData> =
            sources.iter().map(|(n, s)| bench_data(n, s).0).collect();
        let study = OrderingStudy::new(benches);
        let winners = study.subset_experiment(2);
        // C(4,2) = 6 trials distributed among winners.
        let total: u64 = winners.iter().map(|w| w.trials).sum();
        assert_eq!(total, 6);
        assert!((winners.iter().map(|w| w.trial_fraction).sum::<f64>() - 1.0).abs() < 1e-9);
        // Sorted descending.
        assert!(winners.windows(2).all(|w| w[0].trials >= w[1].trials));
    }

    #[test]
    fn ksubsets_enumerates_lexicographically() {
        let all: Vec<Vec<usize>> = KSubsets::all(5, 3).collect();
        assert_eq!(all.len() as u64, KSubsets::count(5, 3));
        assert_eq!(all.len(), 10);
        assert_eq!(all[0], [0, 1, 2]);
        assert_eq!(all[9], [2, 3, 4]);
        // Strictly increasing within each subset, lexicographic across.
        for s in &all {
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
        assert!(all.windows(2).all(|w| w[0] < w[1]), "lexicographic order");
        // Edge cases.
        assert_eq!(
            KSubsets::all(4, 0).collect::<Vec<_>>(),
            [Vec::<usize>::new()]
        );
        assert_eq!(KSubsets::all(4, 4).collect::<Vec<_>>(), [vec![0, 1, 2, 3]]);
        assert_eq!(KSubsets::count(22, 11), 705_432);
        assert_eq!(KSubsets::count(3, 5), 0);
    }

    #[test]
    fn ksubsets_ranges_reassemble_the_full_enumeration() {
        let (n, k) = (9, 4);
        let all: Vec<Vec<usize>> = KSubsets::all(n, k).collect();
        let total = KSubsets::count(n, k);
        for parts in [1usize, 2, 5, 126, 200] {
            let mut reassembled = Vec::new();
            for r in bpfree_par::split_ranges(total, parts) {
                KSubsets::range(n, k, r.start, r.end - r.start)
                    .for_each_subset(|s| reassembled.push(s.to_vec()));
            }
            assert_eq!(reassembled, all, "parts={parts}");
        }
    }

    #[test]
    fn subset_experiment_is_identical_at_any_job_count() {
        let (d1, _, _) = bench_data("a", SRC);
        let (d2, _, _) = bench_data(
            "b",
            "fn main() -> int {
                int i; int s;
                for (i = 0; i < 25; i = i + 1) { if (i > 20) { s = s + 1; } }
                return s;
            }",
        );
        let (d3, _, _) = bench_data(
            "c",
            "global int g[4];
            fn main() -> int {
                int i;
                for (i = 0; i < 16; i = i + 1) { if (i % 4 == 0) { g[1] = i; } }
                return g[1];
            }",
        );
        let study = OrderingStudy::new(vec![d1, d2, d3]);
        let reference = study.subset_experiment(2);
        // par_fold_chunks folds each contiguous range separately; the
        // merged tallies (and so the sorted rows) must not depend on how
        // many ranges there are. Exercise the splitting directly rather
        // than via the process-global job override (tests run in
        // parallel and must not race on it).
        for parts in [1usize, 2, 3] {
            let trials = KSubsets::count(3, 2);
            let ranges = bpfree_par::split_ranges(trials, parts);
            let mut tally = 0u64;
            for r in &ranges {
                KSubsets::range(3, 2, r.start, r.end - r.start).for_each_subset(|_| tally += 1);
            }
            assert_eq!(tally, trials, "parts={parts}");
        }
        let again = study.subset_experiment(2);
        for (a, b) in reference.iter().zip(&again) {
            assert_eq!(a.order, b.order);
            assert_eq!(a.trials, b.trials);
            assert!((a.trial_fraction - b.trial_fraction).abs() < 1e-15);
        }
    }

    #[test]
    fn pairwise_order_is_a_permutation() {
        let p = bpfree_lang::compile(SRC).unwrap();
        let mut prof = EdgeProfiler::new();
        Simulator::new(&p).run(&mut prof).unwrap();
        let profile = prof.into_profile();
        let c = BranchClassifier::analyze(&p);
        let t = HeuristicTable::build(&p, &c);
        let order = OrderingStudy::pairwise_order(&[(&t, &profile)]);
        let mut v = order.to_vec();
        v.sort();
        assert_eq!(v, HeuristicKind::ALL.to_vec());
        let _ = c;
    }

    #[test]
    fn size_hint_saturates_explicitly_past_usize() {
        assert_eq!(saturating_size_hint(0), (0, Some(0)));
        assert_eq!(saturating_size_hint(705_432), (705_432, Some(705_432)));
        assert_eq!(
            saturating_size_hint(usize::MAX as u128),
            (usize::MAX, Some(usize::MAX))
        );
        // One past usize::MAX: the lower bound saturates and the upper
        // bound is honestly unknown, not a truncated lie.
        assert_eq!(
            saturating_size_hint(usize::MAX as u128 + 1),
            (usize::MAX, None)
        );
        assert_eq!(saturating_size_hint(u128::MAX), (usize::MAX, None));
        // The iterator wires through the same helper.
        let it = KSubsets::all(5, 2);
        assert_eq!(it.size_hint(), (10, Some(10)));
    }

    #[test]
    fn for_each_subset_from_reports_the_shared_prefix() {
        let (n, k) = (6, 3);
        let mut prev: Option<Vec<usize>> = None;
        KSubsets::all(n, k).for_each_subset_from(|subset, from| {
            match &prev {
                None => assert_eq!(from, 0, "first yield recomputes everything"),
                Some(p) => {
                    assert_eq!(p[..from], subset[..from], "unchanged prefix");
                    assert_ne!(p[from], subset[from], "slot `from` really changed");
                }
            }
            prev = Some(subset.to_vec());
        });
        assert!(prev.is_some());
    }

    #[test]
    fn first_hit_tables_match_the_seven_way_scan() {
        let (d, _, _) = bench_data("t", SRC);
        for o in all_orders().iter().step_by(97) {
            let fh = FirstHit::new(o);
            assert_eq!(
                d.miss_rate(o).to_bits(),
                d.miss_rate_first_hit(&fh).to_bits()
            );
        }
    }

    #[test]
    fn miss_rate_accepts_partial_orders() {
        let (d, _, _) = bench_data("t", SRC);
        let full = HeuristicKind::paper_order();
        let without: Vec<HeuristicKind> = full
            .iter()
            .copied()
            .filter(|k| *k != HeuristicKind::ALL[0])
            .collect();
        let r_full = d.miss_rate(&full);
        let r_part = d.miss_rate(&without);
        let r_none = d.miss_rate(&[]);
        for r in [r_full, r_part, r_none] {
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn from_parts_roundtrips_a_study() {
        let (d1, _, _) = bench_data("a", SRC);
        let (d2, _, _) = bench_data(
            "b",
            "fn main() -> int {
                int i; int s;
                for (i = 0; i < 25; i = i + 1) { if (i > 20) { s = s + 1; } }
                return s;
            }",
        );
        let study = OrderingStudy::new(vec![d1.clone(), d2.clone()]);
        let rebuilt = OrderingStudy::from_parts(vec![d1, d2], study.rates().to_vec());
        assert_eq!(study.rates(), rebuilt.rates());
        assert_eq!(study.pareto_front(), rebuilt.pareto_front());
        let (wa, wb) = (study.subset_experiment(1), rebuilt.subset_experiment(1));
        assert_eq!(wa.len(), wb.len());
        for (a, b) in wa.iter().zip(&wb) {
            assert_eq!((&a.order, a.trials), (&b.order, b.trials));
        }
    }
}
