//! The paper's analytic sequence-length model (Graph 12).
//!
//! Assume unit-length basic blocks each ending in a conditional branch,
//! independent branches, and a uniform per-branch miss rate `m`. Then the
//! fraction of executed instructions in sequences of length ≤ `s` is
//!
//! ```text
//! f(m, s) = 1 - (1 - m)^s
//! ```
//!
//! The paper's reading: the payoff in sequence length comes not from
//! improving a 30% miss rate to 15%, but from pushing below 15%.

/// `f(m, s) = 1 - (1 - m)^s` — the cumulative fraction of instructions in
/// sequences of length at most `s` under miss rate `m`.
///
/// # Panics
///
/// Panics if `m` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use bpfree_core::model::cumulative_fraction;
/// let f = cumulative_fraction(0.1, 10);
/// assert!((f - (1.0 - 0.9f64.powi(10))).abs() < 1e-12);
/// ```
pub fn cumulative_fraction(m: f64, s: u64) -> f64 {
    assert!((0.0..=1.0).contains(&m), "miss rate {m} out of range");
    1.0 - (1.0 - m).powf(s as f64)
}

/// One curve of Graph 12.
#[derive(Debug, Clone)]
pub struct ModelCurve {
    /// The curve's per-branch miss rate.
    pub miss_rate: f64,
    /// `(sequence length, cumulative fraction)` samples.
    pub points: Vec<(u64, f64)>,
}

/// The family of curves the paper plots: miss rates from 0.025 to 0.30 in
/// steps of 0.025, sampled at `1..=max_len` step `step`.
///
/// # Example
///
/// ```
/// let curves = bpfree_core::model::graph12_curves(100, 1);
/// assert_eq!(curves.len(), 12);
/// assert!(curves[0].miss_rate < curves[11].miss_rate);
/// ```
pub fn graph12_curves(max_len: u64, step: u64) -> Vec<ModelCurve> {
    (1..=12)
        .map(|k| {
            let m = 0.025 * k as f64;
            let points = (1..=max_len)
                .step_by(step.max(1) as usize)
                .map(|s| (s, cumulative_fraction(m, s)))
                .collect();
            ModelCurve {
                miss_rate: m,
                points,
            }
        })
        .collect()
}

/// The sequence length at which the model says half the instructions are
/// covered: the model's "dividing length", `ceil(ln 0.5 / ln (1-m))`.
///
/// # Example
///
/// ```
/// // At a 10% miss rate, half the instructions sit in sequences of
/// // length about 7.
/// assert_eq!(bpfree_core::model::dividing_length(0.10), 7);
/// ```
pub fn dividing_length(m: f64) -> u64 {
    assert!((0.0..=1.0).contains(&m), "miss rate {m} out of range");
    if m <= 0.0 {
        return u64::MAX;
    }
    if m >= 1.0 {
        return 1;
    }
    (0.5f64.ln() / (1.0 - m).ln()).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_is_monotone_in_length() {
        for k in 1..=12 {
            let m = 0.025 * k as f64;
            let mut prev = 0.0;
            for s in 1..200 {
                let f = cumulative_fraction(m, s);
                assert!(f >= prev);
                prev = f;
            }
        }
    }

    #[test]
    fn model_is_monotone_in_miss_rate() {
        for s in [1u64, 10, 100] {
            let lo = cumulative_fraction(0.05, s);
            let hi = cumulative_fraction(0.25, s);
            assert!(hi >= lo);
        }
    }

    #[test]
    fn boundary_cases() {
        assert_eq!(cumulative_fraction(0.0, 100), 0.0);
        assert_eq!(cumulative_fraction(1.0, 1), 1.0);
        assert_eq!(cumulative_fraction(0.5, 0), 0.0);
    }

    #[test]
    fn paper_observation_payoff_below_15_percent() {
        // Halving 30% -> 15% helps less than halving 15% -> 7.5%, in
        // terms of the length covering half the instructions.
        let d30 = dividing_length(0.30);
        let d15 = dividing_length(0.15);
        let d075 = dividing_length(0.075);
        assert!(d15 - d30 < d075 - d15);
    }

    #[test]
    fn dividing_length_edges() {
        assert_eq!(dividing_length(1.0), 1);
        assert_eq!(dividing_length(0.0), u64::MAX);
    }

    #[test]
    fn graph12_shape() {
        let curves = graph12_curves(50, 5);
        assert_eq!(curves.len(), 12);
        assert!((curves[11].miss_rate - 0.30).abs() < 1e-12);
        for c in &curves {
            assert_eq!(c.points.len(), 10);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn negative_miss_rate_panics() {
        cumulative_fraction(-0.1, 5);
    }
}
