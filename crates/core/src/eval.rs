use bpfree_ir::Interner;
use bpfree_sim::EdgeProfile;

use crate::classify::{BranchClass, BranchClassifier};
use crate::heuristics::HeuristicKind;
use crate::predictors::{Attribution, CombinedPredictor, Direction, Predictions};

/// Dynamic miss statistics for one class of branches, in the paper's
/// `C/D` notation: the predictor's miss rate over the perfect static
/// predictor's miss rate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Dynamic executions of branches in this class.
    pub dynamic: u64,
    /// Executions the evaluated predictor got wrong.
    pub misses: u64,
    /// Executions the perfect static predictor gets wrong (the minority
    /// direction counts).
    pub perfect_misses: u64,
}

impl ClassStats {
    /// The predictor's miss rate (0 when the class never executed).
    pub fn miss_rate(&self) -> f64 {
        if self.dynamic == 0 {
            0.0
        } else {
            self.misses as f64 / self.dynamic as f64
        }
    }

    /// The perfect static predictor's miss rate.
    pub fn perfect_rate(&self) -> f64 {
        if self.dynamic == 0 {
            0.0
        } else {
            self.perfect_misses as f64 / self.dynamic as f64
        }
    }

    /// Formats the paper's `C/D` percentage pair, e.g. `"26/10"`.
    pub fn c_over_d(&self) -> String {
        format!(
            "{:.0}/{:.0}",
            100.0 * self.miss_rate(),
            100.0 * self.perfect_rate()
        )
    }

    fn add(&mut self, other: ClassStats) {
        self.dynamic += other.dynamic;
        self.misses += other.misses;
        self.perfect_misses += other.perfect_misses;
    }
}

/// Evaluation of a predictor against one execution's edge profile,
/// broken down by the loop/non-loop taxonomy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Report {
    /// Loop branches only.
    pub loop_branches: ClassStats,
    /// Non-loop branches only.
    pub nonloop: ClassStats,
    /// All conditional branches.
    pub all: ClassStats,
}

impl Report {
    /// Fraction of dynamic branches that are non-loop (the paper's
    /// `%All` column of Table 2).
    pub fn nonloop_fraction(&self) -> f64 {
        if self.all.dynamic == 0 {
            0.0
        } else {
            self.nonloop.dynamic as f64 / self.all.dynamic as f64
        }
    }
}

/// Scores `predictions` against `profile`.
///
/// Branches with no prediction count every execution as a miss (the
/// paper's predictors always cover every branch, so this only matters for
/// partial prediction sets such as a single heuristic in isolation — use
/// [`evaluate_coverage`] for those).
///
/// Iteration is over the classifier's dense program-order branch
/// enumeration, so accumulation order is deterministic.
///
/// # Example
///
/// ```
/// use bpfree_core::{evaluate, perfect_predictions, BranchClassifier};
/// use bpfree_sim::{EdgeProfiler, Simulator};
/// let p = bpfree_lang::compile(
///     "fn main() -> int {
///         int i; int s;
///         for (i = 0; i < 50; i = i + 1) { if (i % 5 == 0) { s = s + 1; } }
///         return s;
///     }",
/// ).unwrap();
/// let mut prof = EdgeProfiler::new();
/// Simulator::new(&p).run(&mut prof).unwrap();
/// let profile = prof.into_profile();
/// let c = BranchClassifier::analyze(&p);
/// let r = evaluate(&perfect_predictions(&p, &profile), &profile, &c);
/// assert_eq!(r.all.misses, r.all.perfect_misses);
/// ```
pub fn evaluate(
    predictions: &Predictions,
    profile: &EdgeProfile,
    classifier: &BranchClassifier,
) -> Report {
    let mut report = Report::default();
    for (branch, class) in classifier.branches() {
        let counts = profile.counts(branch);
        if counts.total() == 0 {
            continue;
        }
        let misses = match predictions.get(branch) {
            Some(Direction::Taken) => counts.fallthru,
            Some(Direction::FallThru) => counts.taken,
            None => counts.total(),
        };
        let stats = ClassStats {
            dynamic: counts.total(),
            misses,
            perfect_misses: counts.minority(),
        };
        match class {
            BranchClass::Loop => report.loop_branches.add(stats),
            BranchClass::NonLoop => report.nonloop.add(stats),
        }
        report.all.add(stats);
    }
    report
}

/// Coverage-aware statistics for a *partial* predictor (one heuristic in
/// isolation): how many dynamic non-loop branches it applies to, and its
/// miss rate on that covered subset — the bold number plus `C/D` pair of
/// the paper's Table 3.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageStats {
    /// Dynamic executions of covered branches.
    pub covered: u64,
    /// Total dynamic non-loop branch executions (covered or not).
    pub total_nonloop: u64,
    /// Misses on the covered subset.
    pub misses: u64,
    /// Perfect-predictor misses on the covered subset.
    pub perfect_misses: u64,
}

impl CoverageStats {
    /// Fraction of dynamic non-loop branches covered.
    pub fn coverage(&self) -> f64 {
        if self.total_nonloop == 0 {
            0.0
        } else {
            self.covered as f64 / self.total_nonloop as f64
        }
    }

    /// Miss rate on the covered subset.
    pub fn miss_rate(&self) -> f64 {
        if self.covered == 0 {
            0.0
        } else {
            self.misses as f64 / self.covered as f64
        }
    }

    /// Perfect miss rate on the covered subset.
    pub fn perfect_rate(&self) -> f64 {
        if self.covered == 0 {
            0.0
        } else {
            self.perfect_misses as f64 / self.covered as f64
        }
    }
}

/// Scores a partial prediction set over the **non-loop** branches only,
/// reporting coverage and miss rates on the covered subset.
pub fn evaluate_coverage(
    predictions: &Predictions,
    profile: &EdgeProfile,
    classifier: &BranchClassifier,
) -> CoverageStats {
    let mut stats = CoverageStats::default();
    for (branch, class) in classifier.branches() {
        if class != BranchClass::NonLoop {
            continue;
        }
        let counts = profile.counts(branch);
        stats.total_nonloop += counts.total();
        let Some(dir) = predictions.get(branch) else {
            continue;
        };
        stats.covered += counts.total();
        stats.misses += match dir {
            Direction::Taken => counts.fallthru,
            Direction::FallThru => counts.taken,
        };
        stats.perfect_misses += counts.minority();
    }
    stats
}

/// Per-attribution-source coverage statistics, keyed by interned source
/// label — the dense replacement for the old `HashMap<String, _>`
/// breakdown. Slots exist for all seven heuristic labels plus
/// `"Default"`, and iteration follows [`HeuristicKind::index`] order with
/// `Default` last.
#[derive(Debug, Clone)]
pub struct SourceBreakdown {
    /// Interned source labels in slot order.
    names: Interner,
    /// Stats per slot, parallel to `names`.
    stats: Vec<CoverageStats>,
}

/// Slot of the `Default` source (after the seven heuristics).
const DEFAULT_SLOT: usize = 7;

impl SourceBreakdown {
    fn new() -> SourceBreakdown {
        let mut names = Interner::default();
        let mut by_index = HeuristicKind::ALL;
        by_index.sort_by_key(|k| k.index());
        for kind in by_index {
            names.intern(kind.label());
        }
        let default = names.intern("Default");
        debug_assert_eq!(default.0 as usize, DEFAULT_SLOT);
        SourceBreakdown {
            names,
            stats: vec![CoverageStats::default(); DEFAULT_SLOT + 1],
        }
    }

    fn slot(attr: Attribution) -> usize {
        match attr {
            Attribution::Heuristic(kind) => kind.index(),
            Attribution::Default => DEFAULT_SLOT,
            Attribution::LoopBranch => unreachable!("non-loop branch attributed to loop"),
        }
    }

    /// The stats for a source label (`None` for unknown labels).
    pub fn get(&self, label: &str) -> Option<&CoverageStats> {
        self.names
            .lookup(label)
            .map(|id| &self.stats[id.0 as usize])
    }

    /// Iterator over `(label, stats)` pairs in slot order (heuristics by
    /// dense index, then `Default`).
    pub fn iter(&self) -> impl Iterator<Item = (&str, &CoverageStats)> + '_ {
        self.names.iter().zip(&self.stats).map(|((_, n), s)| (n, s))
    }
}

impl Default for SourceBreakdown {
    fn default() -> SourceBreakdown {
        SourceBreakdown::new()
    }
}

/// A [`Report`] plus per-attribution breakdown (which heuristic predicted
/// what, with what accuracy) — the raw material of the paper's Table 5.
#[derive(Debug, Clone, Default)]
pub struct AttributedReport {
    /// The overall evaluation.
    pub report: Report,
    /// Coverage stats per attribution source over non-loop branches.
    pub by_source: SourceBreakdown,
    /// The heuristics-only aggregate (every source except `Default`):
    /// the paper's Table 6 "Heuristics" columns — how much of the
    /// non-loop branch stream the heuristics themselves cover, and how
    /// well they predict that covered subset.
    pub heuristics: CoverageStats,
}

/// Evaluates a combined predictor and attributes every non-loop miss to
/// the heuristic (or Default) that made the prediction.
pub fn evaluate_with_attribution(
    predictor: &CombinedPredictor,
    profile: &EdgeProfile,
    classifier: &BranchClassifier,
) -> AttributedReport {
    let predictions = predictor.predictions();
    let report = evaluate(&predictions, profile, classifier);
    let mut by_source = SourceBreakdown::new();
    let mut total_nonloop = 0u64;
    for (branch, class) in classifier.branches() {
        if class != BranchClass::NonLoop {
            continue;
        }
        let counts = profile.counts(branch);
        total_nonloop += counts.total();
        let entry = &mut by_source.stats[SourceBreakdown::slot(predictor.attribution(branch))];
        entry.covered += counts.total();
        entry.misses += match predictions.get(branch) {
            Some(Direction::Taken) => counts.fallthru,
            Some(Direction::FallThru) => counts.taken,
            None => counts.total(),
        };
        entry.perfect_misses += counts.minority();
    }
    let mut heuristics = CoverageStats {
        total_nonloop,
        ..CoverageStats::default()
    };
    for (slot, stats) in by_source.stats.iter_mut().enumerate() {
        stats.total_nonloop = total_nonloop;
        if slot != DEFAULT_SLOT {
            heuristics.covered += stats.covered;
            heuristics.misses += stats.misses;
            heuristics.perfect_misses += stats.perfect_misses;
        }
    }
    AttributedReport {
        report,
        by_source,
        heuristics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictors::{loop_rand_predictions, taken_predictions, DEFAULT_SEED};
    use bpfree_sim::{EdgeProfiler, Simulator};

    fn setup(src: &str) -> (bpfree_ir::Program, EdgeProfile, BranchClassifier) {
        let p = bpfree_lang::compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
        let mut prof = EdgeProfiler::new();
        Simulator::new(&p).run(&mut prof).unwrap();
        let profile = prof.into_profile();
        let c = BranchClassifier::analyze(&p);
        (p, profile, c)
    }

    const LOOPY: &str = "fn main() -> int {
        int i; int s;
        for (i = 0; i < 100; i = i + 1) {
            if (i % 10 == 0) { s = s + 1; }
        }
        return s;
    }";

    #[test]
    fn perfect_predictor_matches_perfect_misses() {
        let (p, profile, c) = setup(LOOPY);
        let perfect = crate::predictors::perfect_predictions(&p, &profile);
        let r = evaluate(&perfect, &profile, &c);
        assert_eq!(r.all.misses, r.all.perfect_misses);
        assert!(r.all.miss_rate() <= 0.5);
    }

    #[test]
    fn loop_predictor_beats_always_taken_on_loops() {
        let (p, profile, c) = setup(LOOPY);
        let lr = loop_rand_predictions(&p, &c, DEFAULT_SEED);
        let tk = taken_predictions(&p);
        let r_lr = evaluate(&lr, &profile, &c);
        let r_tk = evaluate(&tk, &profile, &c);
        // The loop latch iterates 99 times and exits once: loop
        // prediction misses once per loop execution.
        assert_eq!(r_lr.loop_branches.misses, 1);
        assert!(r_lr.loop_branches.misses <= r_tk.loop_branches.misses);
    }

    #[test]
    fn class_split_sums_to_all() {
        let (p, profile, c) = setup(LOOPY);
        let tk = taken_predictions(&p);
        let r = evaluate(&tk, &profile, &c);
        assert_eq!(r.all.dynamic, r.loop_branches.dynamic + r.nonloop.dynamic);
        assert_eq!(r.all.misses, r.loop_branches.misses + r.nonloop.misses);
        assert!(r.nonloop_fraction() > 0.0 && r.nonloop_fraction() < 1.0);
    }

    #[test]
    fn unpredicted_branches_all_miss() {
        let (_p, profile, c) = setup(LOOPY);
        let empty = Predictions::new();
        let r = evaluate(&empty, &profile, &c);
        assert_eq!(r.all.misses, r.all.dynamic);
    }

    #[test]
    fn coverage_stats_for_partial_predictor() {
        let (p, profile, c) = setup(LOOPY);
        // Predict only the mod-test branch (a non-loop branch).
        let nonloop_branch = p
            .branches()
            .into_iter()
            .find(|b| c.class(*b) == BranchClass::NonLoop && profile.counts(*b).total() == 100)
            .expect("the mod test runs 100 times");
        let mut partial = Predictions::new();
        partial.set(nonloop_branch, Direction::Taken);
        let cov = evaluate_coverage(&partial, &profile, &c);
        assert_eq!(cov.covered, 100);
        // Non-loop dynamic = guard (1) + mod test (100).
        assert_eq!(cov.total_nonloop, 101);
        // `if (i % 10 == 0)` is true 10 of 100 times; branch-over makes
        // "true" the fall-through, so Taken hits 90 and misses 10.
        assert_eq!(cov.misses, 10);
        assert_eq!(cov.perfect_misses, 10);
        assert!((cov.coverage() - 100.0 / 101.0).abs() < 1e-12);
    }

    #[test]
    fn heuristics_aggregate_excludes_default_and_shares_the_total() {
        let (p, profile, c) = setup(LOOPY);
        let cp = crate::predictors::CombinedPredictor::new(
            &p,
            &c,
            crate::heuristics::HeuristicKind::paper_order(),
        );
        let att = evaluate_with_attribution(&cp, &profile, &c);

        let mut covered = 0u64;
        let mut misses = 0u64;
        let mut perfect = 0u64;
        let mut total_nl = 0u64;
        for (name, s) in att.by_source.iter() {
            total_nl = total_nl.max(s.total_nonloop);
            if name != "Default" {
                covered += s.covered;
                misses += s.misses;
                perfect += s.perfect_misses;
            }
        }
        assert_eq!(att.heuristics.covered, covered);
        assert_eq!(att.heuristics.misses, misses);
        assert_eq!(att.heuristics.perfect_misses, perfect);
        assert_eq!(att.heuristics.total_nonloop, total_nl);
        // Heuristics + Default together cover every non-loop execution.
        let default_covered = att.by_source.get("Default").map_or(0, |s| s.covered);
        assert_eq!(covered + default_covered, att.heuristics.total_nonloop);
        assert!(att.heuristics.covered > 0, "LOOPY has a mod-test branch");
    }

    #[test]
    fn by_source_iterates_in_dense_slot_order() {
        let (p, profile, c) = setup(LOOPY);
        let cp = crate::predictors::CombinedPredictor::new(
            &p,
            &c,
            crate::heuristics::HeuristicKind::paper_order(),
        );
        let att = evaluate_with_attribution(&cp, &profile, &c);
        let labels: Vec<&str> = att.by_source.iter().map(|(l, _)| l).collect();
        let mut expect: Vec<(usize, &str)> = HeuristicKind::ALL
            .into_iter()
            .map(|k| (k.index(), k.label()))
            .collect();
        expect.sort();
        let mut expect: Vec<&str> = expect.into_iter().map(|(_, l)| l).collect();
        expect.push("Default");
        assert_eq!(labels, expect);
        assert!(att.by_source.get("NoSuchSource").is_none());
    }

    #[test]
    fn c_over_d_format() {
        let s = ClassStats {
            dynamic: 100,
            misses: 26,
            perfect_misses: 10,
        };
        assert_eq!(s.c_over_d(), "26/10");
        assert_eq!(ClassStats::default().c_over_d(), "0/0");
    }
}
