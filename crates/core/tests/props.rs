//! Property tests for evaluation and ordering invariants.

use bpfree_core::ordering::{all_orders, BenchOrderData};
use bpfree_core::{
    evaluate, perfect_predictions, random_predictions, BranchClassifier, CombinedPredictor,
    Direction, HeuristicKind, HeuristicTable, Predictions,
};
use bpfree_ir::BranchRef;
use bpfree_sim::EdgeProfile;
use proptest::prelude::*;

const SRC: &str = "global int acc[8];
fn work(ptr p, int x) -> int {
    int v;
    if (p == null) { return -1; }
    v = p[0];
    if (v < 0) { acc[0] = acc[0] + 1; return 0; }
    if (x % 3 == 0) { acc[1] = acc[1] + v; }
    while (v > 100) { v = v - 100; }
    return v;
}
fn main() -> int {
    ptr q; int i; int s;
    q = alloc(2);
    for (i = 0; i < 50; i = i + 1) {
        q[0] = i * 7 % 311;
        s = s + work(q, i);
    }
    return s;
}";

fn setup() -> (bpfree_ir::Program, BranchClassifier) {
    let p = bpfree_lang::compile(SRC).unwrap();
    let c = BranchClassifier::analyze(&p);
    (p, c)
}

/// A random profile over the program's branch sites.
fn arb_profile(branches: Vec<BranchRef>) -> impl Strategy<Value = EdgeProfile> {
    proptest::collection::vec((0u64..500, 0u64..500), branches.len()).prop_map(move |counts| {
        let mut prof = EdgeProfile::new();
        for (b, (t, f)) in branches.iter().zip(counts) {
            for _ in 0..t.min(40) {
                prof.record(*b, true);
            }
            for _ in 0..f.min(40) {
                prof.record(*b, false);
            }
        }
        prof
    })
}

/// A random complete prediction set.
fn arb_predictions(branches: Vec<BranchRef>) -> impl Strategy<Value = Predictions> {
    proptest::collection::vec(any::<bool>(), branches.len()).prop_map(move |bits| {
        branches
            .iter()
            .zip(bits)
            .map(|(b, t)| {
                (
                    *b,
                    if t {
                        Direction::Taken
                    } else {
                        Direction::FallThru
                    },
                )
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The perfect static predictor is optimal: no prediction set has
    /// fewer misses against a profile.
    #[test]
    fn perfect_is_optimal(
        (profile, preds) in {
            let (p, _) = setup();
            let branches = p.branches();
            (arb_profile(branches.clone()), arb_predictions(branches))
        }
    ) {
        let (p, c) = setup();
        let perfect = perfect_predictions(&p, &profile);
        let r_perfect = evaluate(&perfect, &profile, &c);
        let r_other = evaluate(&preds, &profile, &c);
        prop_assert!(r_perfect.all.misses <= r_other.all.misses);
        // And the perfect predictor's misses equal the reported
        // perfect_misses for every evaluation.
        prop_assert_eq!(r_perfect.all.misses, r_other.all.perfect_misses);
    }

    /// Evaluation accounting: misses never exceed dynamic counts, class
    /// stats partition the total, and flipping every prediction flips
    /// misses to hits.
    #[test]
    fn evaluation_accounting(
        (profile, preds) in {
            let (p, _) = setup();
            let branches = p.branches();
            (arb_profile(branches.clone()), arb_predictions(branches))
        }
    ) {
        let (_p, c) = setup();
        let r = evaluate(&preds, &profile, &c);
        prop_assert!(r.all.misses <= r.all.dynamic);
        prop_assert_eq!(r.all.dynamic, profile.total_branches());
        prop_assert_eq!(r.all.dynamic, r.loop_branches.dynamic + r.nonloop.dynamic);
        prop_assert_eq!(r.all.misses, r.loop_branches.misses + r.nonloop.misses);

        let flipped: Predictions =
            preds.iter().map(|(b, d)| (b, d.flip())).collect();
        let r2 = evaluate(&flipped, &profile, &c);
        prop_assert_eq!(r.all.misses + r2.all.misses, r.all.dynamic);
    }

    /// Every ordering yields a miss rate in [perfect-bound, 1], and the
    /// order-evaluation machinery agrees with a direct evaluation of the
    /// corresponding combined predictor.
    #[test]
    fn order_machinery_matches_direct_evaluation(
        profile in {
            let (p, _) = setup();
            arb_profile(p.branches())
        },
        order_idx in 0usize..5040,
    ) {
        let (p, c) = setup();
        let table = HeuristicTable::build(&p, &c);
        let data = BenchOrderData::build("t", &table, &profile, &c, 1234);
        let order = all_orders()[order_idx];
        let fast = data.miss_rate(&order);

        let cp = CombinedPredictor::with_seed(&p, &c, order, 1234);
        let r = evaluate(&cp.predictions(), &profile, &c);
        let direct = if r.nonloop.dynamic == 0 {
            0.0
        } else {
            r.nonloop.misses as f64 / r.nonloop.dynamic as f64
        };
        prop_assert!((fast - direct).abs() < 1e-12, "fast {fast} direct {direct}");
    }

    /// Random predictions are deterministic in the seed.
    #[test]
    fn random_predictions_deterministic(seed in any::<u64>()) {
        let (p, _) = setup();
        prop_assert_eq!(
            random_predictions(&p, seed),
            random_predictions(&p, seed)
        );
    }

    /// The combined predictor covers every branch for every order.
    #[test]
    fn combined_total_for_every_order(order_idx in 0usize..5040) {
        let (p, c) = setup();
        let order = all_orders()[order_idx];
        let cp = CombinedPredictor::new(&p, &c, order);
        prop_assert_eq!(cp.predictions().len(), p.branches().len());
    }

    /// The analytic model is a CDF in s and monotone in m.
    #[test]
    fn model_is_a_cdf(m in 0.0f64..1.0, s in 0u64..500) {
        use bpfree_core::model::cumulative_fraction;
        let f = cumulative_fraction(m, s);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(cumulative_fraction(m, s + 1) >= f);
        if m < 0.99 {
            prop_assert!(cumulative_fraction((m + 0.01).min(1.0), s) >= f - 1e-12);
        }
    }
}

/// HeuristicKind::paper_order must never change silently — the published
/// tables depend on it.
#[test]
fn paper_order_is_fixed() {
    let labels: Vec<&str> = HeuristicKind::paper_order()
        .iter()
        .map(|k| k.label())
        .collect();
    assert_eq!(
        labels,
        vec!["Point", "Call", "Opcode", "Return", "Store", "Loop", "Guard"]
    );
}
