//! Property tests pinning the ordering-study fast kernels to the naive
//! seed-path loops they replaced.
//!
//! Two claims must hold *bit-exactly* (not just approximately) for the
//! experiment stdout to stay byte-identical:
//!
//! * the prefix-reuse subset sweep ([`subset_sweep_wins`]) produces the
//!   same per-subset f64 sums — same bits, same argmin, same tallies —
//!   as the naive per-candidate gather loop, on any rate matrix and at
//!   any contiguous range split;
//! * per-order [`FirstHit`] tables resolve every applies mask to the
//!   same heuristic the 7-way first-hit scan finds, across all 5040
//!   orders.

use bpfree_core::ordering::{all_orders, subset_sweep_wins, FirstHit, KSubsets};
use bpfree_core::HeuristicKind;
use proptest::prelude::*;

/// The seed-path sweep: per subset, a scalar gather per candidate
/// (`sum = 0.0; sum += rates[b]; …`), first strict minimum wins. The
/// rate matrix here is candidate-major (`rates[ci][b]`), exactly as the
/// pre-kernel code scanned it.
fn naive_sweep(
    rates: &[Vec<f64>],
    n: usize,
    k: usize,
    start: u64,
    len: u64,
    wins: &mut [u64],
    sums: &mut Vec<Vec<f64>>,
) {
    KSubsets::range(n, k, start, len).for_each_subset(|subset| {
        let mut best = 0usize;
        let mut best_rate = f64::INFINITY;
        let mut row = Vec::with_capacity(rates.len());
        for (ci, cand) in rates.iter().enumerate() {
            let mut sum = 0.0;
            for &b in subset {
                sum += cand[b];
            }
            row.push(sum);
            if sum < best_rate {
                best_rate = sum;
                best = ci;
            }
        }
        sums.push(row);
        wins[best] += 1;
    });
}

/// The fast sweep, additionally recording every subset's final sum
/// vector so the test can compare raw bits, not just winners.
fn fast_sweep_with_sums(
    cols: &[Vec<f64>],
    n: usize,
    k: usize,
    start: u64,
    len: u64,
    wins: &mut [u64],
) -> Vec<Vec<f64>> {
    // `subset_sweep_wins` only exposes tallies; re-derive the sums with
    // the same per-slot prefix stack to check them bit-for-bit.
    let c = wins.len();
    let mut partial = vec![0.0f64; k * c];
    let mut sums = Vec::new();
    KSubsets::range(n, k, start, len).for_each_subset_from(|subset, from| {
        for slot in from..k {
            let col = &cols[subset[slot]][..c];
            if slot == 0 {
                for (dst, &r) in partial[..c].iter_mut().zip(col) {
                    *dst = 0.0 + r;
                }
            } else {
                let (prev, cur) = partial.split_at_mut(slot * c);
                let prev = &prev[(slot - 1) * c..];
                for (ci, dst) in cur[..c].iter_mut().enumerate() {
                    *dst = prev[ci] + col[ci];
                }
            }
        }
        sums.push(partial[(k - 1) * c..].to_vec());
    });
    subset_sweep_wins(cols, n, k, start, len, wins);
    sums
}

/// A random rate matrix: `c` candidates × `n` benchmarks of rates in
/// [0, 1], plus a subset size `1..=n` and a worker-split count.
fn matrix_strategy() -> impl Strategy<Value = (Vec<Vec<f64>>, usize, usize)> {
    (1usize..=10, 1usize..=16).prop_flat_map(|(n, c)| {
        (
            proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, n), c),
            1..=n,
            1usize..=5,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tentpole bit-identity: winner tallies AND per-subset f64 sums of
    /// the prefix-reuse kernel equal the naive gather loop's, for any
    /// random rate matrix, any k ≤ n, and any contiguous range split.
    #[test]
    fn prefix_kernel_is_bit_identical_to_naive_sweep(
        (rates, k, parts) in matrix_strategy()
    ) {
        let c = rates.len();
        let n = rates[0].len();
        // Benchmark-major transposition for the kernel.
        let cols: Vec<Vec<f64>> = (0..n)
            .map(|b| rates.iter().map(|cand| cand[b]).collect())
            .collect();
        let total = KSubsets::count(n, k);

        let mut naive_wins = vec![0u64; c];
        let mut naive_sums = Vec::new();
        naive_sweep(&rates, n, k, 0, total, &mut naive_wins, &mut naive_sums);

        // Whole-range fast sweep: sums bit-identical, tallies equal.
        let mut fast_wins = vec![0u64; c];
        let fast_sums = fast_sweep_with_sums(&cols, n, k, 0, total, &mut fast_wins);
        prop_assert_eq!(&fast_wins, &naive_wins);
        prop_assert_eq!(fast_sums.len(), naive_sums.len());
        for (f, s) in fast_sums.iter().zip(&naive_sums) {
            for (a, b) in f.iter().zip(s) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // Split into contiguous worker ranges (what par_fold_chunks
        // does): merged tallies must not depend on the split.
        let mut split_wins = vec![0u64; c];
        for r in bpfree_par::split_ranges(total, parts) {
            subset_sweep_wins(&cols, n, k, r.start, r.end - r.start, &mut split_wins);
        }
        prop_assert_eq!(&split_wins, &naive_wins);
    }
}

/// Exhaustive (not sampled) first-hit check: every one of the 5040
/// orders, every 7-bit applies mask, table load == 7-way scan.
#[test]
fn first_hit_tables_match_the_scan_for_all_orders_and_masks() {
    for order in all_orders() {
        let fh = FirstHit::new(&order);
        for mask in 0u8..128 {
            let scanned = order
                .iter()
                .map(|kind| 1u8 << kind.index())
                .find(|bit| mask & bit != 0)
                .unwrap_or(0);
            assert_eq!(fh.hit(mask), scanned, "order {order:?} mask {mask:#09b}");
        }
    }
}

/// The first-hit table only depends on the 7 low mask bits; the scan
/// and table agree that a full `HeuristicKind::ALL` order hits the
/// lowest set bit of any mask.
#[test]
fn first_hit_of_index_order_is_lowest_set_bit() {
    let fh = FirstHit::new(&HeuristicKind::ALL);
    for mask in 1u8..128 {
        assert_eq!(fh.hit(mask), mask & mask.wrapping_neg());
    }
    assert_eq!(fh.hit(0), 0);
}
