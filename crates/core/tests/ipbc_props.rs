//! Differential properties of segmented IPBC analysis: for random
//! predictor assignments and random traces over a real compiled
//! program, segmented replay of an `IpbcAnalyzer` (the fused kernel
//! plus run-stitching merge) must produce *exactly* the distributions
//! serial replay produces — every bucket, every counter — at any
//! segment count, and the O(dict) `evaluate_trace` tier must agree on
//! all order-independent fields.

use bpfree_core::ipbc::IpbcAnalyzer;
use bpfree_core::{evaluate_trace, Direction, Predictions};
use bpfree_ir::{BranchRef, Program, Terminator};
use bpfree_sim::{BranchTrace, TraceEvent};
use proptest::prelude::*;

/// A fixed program with a healthy number of branch sites; the traces
/// are synthesised over its sites, so one compile serves every case.
fn program() -> &'static Program {
    use std::sync::OnceLock;
    static P: OnceLock<Program> = OnceLock::new();
    P.get_or_init(|| {
        bpfree_lang::compile(
            "fn helper(int n) -> int {
                int s; int i;
                for (i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
                    if (s > 100) { s = 0; }
                }
                return s;
            }
            fn main() -> int {
                int a; int b;
                a = helper(10);
                if (a < 0) { b = 1; }
                while (b < 5) { b = b + 1; }
                return a + b;
            }",
        )
        .unwrap()
    })
}

/// Every conditional branch site of the program.
fn branch_sites(p: &Program) -> Vec<BranchRef> {
    let mut sites = Vec::new();
    for fid in p.func_ids() {
        let func = p.func(fid);
        for bid in func.block_ids() {
            if let Terminator::Branch { .. } = func.block(bid).term {
                sites.push(BranchRef {
                    func: fid,
                    block: bid,
                });
            }
        }
    }
    sites
}

/// A random (possibly partial) prediction set: 0 = unpredicted,
/// 1 = taken, 2 = fall-through, zipped against the program's sites
/// (over-provisioned so the exact site count doesn't matter).
fn arb_predictions(n_sites: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..3, n_sites..=n_sites)
}

fn to_predictions(sites: &[BranchRef], choices: &[u8]) -> Predictions {
    let mut p = Predictions::new();
    for (&site, &c) in sites.iter().zip(choices) {
        match c {
            1 => p.set(site, Direction::Taken),
            2 => p.set(site, Direction::FallThru),
            _ => {}
        }
    }
    p
}

/// A random trace whose events reference the program's real branch
/// sites (instruction counts up to 30, sequences up to 300 events).
fn arb_trace() -> impl Strategy<Value = BranchTrace> {
    let sites = branch_sites(program());
    let n_sites = sites.len() as u32;
    proptest::collection::vec((0u64..30, 0..n_sites, any::<bool>()), 1..10).prop_flat_map(
        move |raw| {
            let sites = branch_sites(program());
            let dict: Vec<TraceEvent> = raw
                .iter()
                .map(|&(instrs, site, taken)| TraceEvent {
                    instrs,
                    branch: sites[site as usize],
                    taken,
                })
                .collect();
            let n = dict.len() as u32;
            (
                Just(dict),
                proptest::collection::vec(0..n, 0..300),
                0u64..15,
            )
                .prop_map(|(dict, seq, tail)| {
                    BranchTrace::from_parts(dict, seq, tail).expect("indices in range")
                })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Segmented IPBC analysis ≡ serial, for three random predictors
    /// scored simultaneously, at segment counts spanning 1 to beyond
    /// the event count. `SequenceDist` derives `PartialEq`, so this
    /// compares every bucket of every histogram.
    #[test]
    fn segmented_ipbc_equals_serial(
        trace in arb_trace(),
        c1 in arb_predictions(16),
        c2 in arb_predictions(16),
        c3 in arb_predictions(16),
        jobs in 1usize..10,
    ) {
        let p = program();
        let sites = branch_sites(p);
        let preds = [
            to_predictions(&sites, &c1),
            to_predictions(&sites, &c2),
            to_predictions(&sites, &c3),
        ];

        let mut serial = IpbcAnalyzer::new(p);
        for (i, pr) in preds.iter().enumerate() {
            serial.add_predictor(format!("p{i}"), pr);
        }
        trace.replay(&mut serial);
        let serial_dists = serial.finish();

        for jobs in [1, 2, jobs, trace.len(), trace.len() + 3] {
            let mut seg = IpbcAnalyzer::new(p);
            for (i, pr) in preds.iter().enumerate() {
                seg.add_predictor(format!("p{i}"), pr);
            }
            trace.replay_segmented_jobs(jobs, &mut seg);
            let seg_dists = seg.finish();
            prop_assert_eq!(&seg_dists, &serial_dists, "jobs={}", jobs);
        }
    }

    /// The O(dict) tally tier agrees with serial replay on every
    /// order-independent field, and hence on the derived miss rate and
    /// IPBC average (identical integers → identical doubles).
    #[test]
    fn tally_eval_equals_replay_eval(
        trace in arb_trace(),
        choices in arb_predictions(16),
    ) {
        let p = program();
        let sites = branch_sites(p);
        let predictions = to_predictions(&sites, &choices);

        let eval = evaluate_trace(&predictions, &trace);

        let mut analyzer = IpbcAnalyzer::new(p);
        analyzer.add_predictor("p", &predictions);
        trace.replay(&mut analyzer);
        let dist = analyzer.finish().remove(0);

        prop_assert_eq!(eval.mispredicted, dist.mispredicted);
        prop_assert_eq!(eval.total_branches, dist.total_branches);
        prop_assert_eq!(eval.breaks, dist.breaks);
        prop_assert_eq!(eval.total_instructions, dist.total_instructions);
        prop_assert_eq!(eval.miss_rate().to_bits(), dist.miss_rate().to_bits());
        prop_assert_eq!(eval.ipbc_average().to_bits(), dist.ipbc_average().to_bits());
    }
}
