//! Property tests pinning the dense (`BranchId`-indexed) classifier and
//! heuristic table to a hash-keyed oracle on randomly generated
//! programs.
//!
//! The PR that introduced dense storage replaced `HashMap`-keyed
//! per-branch tables with `Vec`s indexed by the program-order branch
//! enumeration. The oracle here re-derives every classification and
//! every heuristic cell through the public analysis API into plain
//! `HashMap`s — the shape the old implementation had — and asserts the
//! dense answers agree branch-for-branch, so an indexing bug in the
//! dense side tables (off-by-one ids, wrong function ranges, misordered
//! rows) cannot survive.

use std::collections::HashMap;

use bpfree_cfg::FunctionAnalysis;
use bpfree_core::heuristics::BranchContext;
use bpfree_core::{BranchClass, BranchClassifier, Direction, HeuristicKind, HeuristicTable};
use bpfree_ir::{BlockId, BranchRef, Cond, Function, FunctionBuilder, Program, Terminator};
use proptest::prelude::*;

/// Builds a function with `n` blocks and pseudo-random terminators
/// derived from `seed` — the same generator shape the CFG property
/// tests use, so loop structure varies freely (nested loops, multiple
/// exits, irreducible regions, unreachable blocks).
fn random_function(name: &str, n: usize, seed: &[u8]) -> Function {
    let mut b = FunctionBuilder::new(name);
    let r = b.new_reg();
    let blocks: Vec<BlockId> = (0..n)
        .map(|i| if i == 0 { b.entry() } else { b.new_block() })
        .collect();
    for (i, &blk) in blocks.iter().enumerate() {
        let s0 = seed[(i * 3) % seed.len()] as usize;
        let s1 = seed[(i * 3 + 1) % seed.len()] as usize;
        let s2 = seed[(i * 3 + 2) % seed.len()] as usize;
        match s0 % 4 {
            0 => b.set_term(
                blk,
                Terminator::Ret {
                    val: None,
                    fval: None,
                },
            ),
            1 => b.set_term(blk, Terminator::Jump(blocks[s1 % n])),
            _ => {
                let taken = blocks[s1 % n];
                let mut fall = blocks[s2 % n];
                if taken == fall {
                    fall = blocks[(s2 + 1) % n];
                }
                if taken == fall {
                    b.set_term(blk, Terminator::Jump(taken));
                } else {
                    b.set_term(
                        blk,
                        Terminator::Branch {
                            cond: Cond::Gtz(r),
                            taken,
                            fallthru: fall,
                        },
                    );
                }
            }
        }
    }
    b.finish().expect("all blocks terminated")
}

fn random_program(funcs: usize, n: usize, seed: &[u8]) -> Program {
    let fs = (0..funcs)
        .map(|f| {
            let name = format!("f{f}");
            // Rotate the seed per function so functions differ.
            let mut s = seed.to_vec();
            let by = f % s.len().max(1);
            s.rotate_left(by);
            random_function(&name, n, &s)
        })
        .collect();
    Program::new(fs, 0).expect("random functions validate")
}

/// The oracle: per-branch classification re-derived through the public
/// loop-analysis queries into hash-keyed tables, mirroring the paper's
/// Section 3 taxonomy exactly as `classify_branch` implements it.
fn oracle_classify(
    program: &Program,
) -> (
    HashMap<BranchRef, BranchClass>,
    HashMap<BranchRef, Option<Direction>>,
) {
    let mut class = HashMap::new();
    let mut loop_pred = HashMap::new();
    for (fid, func) in program.funcs().iter().enumerate() {
        let a = FunctionAnalysis::new(func);
        for (bid, block) in func.blocks().iter().enumerate() {
            let Terminator::Branch {
                taken, fallthru, ..
            } = block.term
            else {
                continue;
            };
            let block = BlockId(bid as u32);
            let b = BranchRef {
                func: bpfree_ir::FuncId(fid as u32),
                block,
            };
            let taken_back = a.loops.is_backedge(block, taken);
            let fall_back = a.loops.is_backedge(block, fallthru);
            let taken_exit = a.loops.is_exit_edge(block, taken);
            let fall_exit = a.loops.is_exit_edge(block, fallthru);
            if !taken_back && !fall_back && !taken_exit && !fall_exit {
                class.insert(b, BranchClass::NonLoop);
                loop_pred.insert(b, None);
                continue;
            }
            let deeper_taken = a.loops.depth(taken) >= a.loops.depth(fallthru);
            let pred = if taken_back && fall_back {
                if deeper_taken {
                    Direction::Taken
                } else {
                    Direction::FallThru
                }
            } else if taken_back {
                Direction::Taken
            } else if fall_back || (taken_exit && !fall_exit) {
                Direction::FallThru
            } else if fall_exit && !taken_exit {
                Direction::Taken
            } else {
                // Both edges are exit edges: stay in the deeper loop.
                if deeper_taken {
                    Direction::Taken
                } else {
                    Direction::FallThru
                }
            };
            class.insert(b, BranchClass::Loop);
            loop_pred.insert(b, Some(pred));
        }
    }
    (class, loop_pred)
}

/// The oracle's heuristic matrix: every cell computed by a direct
/// `HeuristicKind::predict` call, keyed by hash.
fn oracle_table(
    program: &Program,
    class: &HashMap<BranchRef, BranchClass>,
) -> HashMap<BranchRef, [Option<Direction>; 7]> {
    let mut out = HashMap::new();
    for (fid, func) in program.funcs().iter().enumerate() {
        let a = FunctionAnalysis::new(func);
        for b in program.branches() {
            if b.func.index() != fid || class[&b] != BranchClass::NonLoop {
                continue;
            }
            let ctx = BranchContext::new(program, &a, b);
            let mut row = [None; 7];
            for kind in HeuristicKind::ALL {
                row[kind.index()] = kind.predict(&ctx);
            }
            out.insert(b, row);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Dense classification agrees with the hash-keyed oracle on every
    /// branch, and the dense iteration order is exactly program order.
    #[test]
    fn dense_classification_matches_hash_oracle(
        funcs in 1usize..4,
        n in 1usize..20,
        seed in proptest::collection::vec(any::<u8>(), 8..64),
    ) {
        let p = random_program(funcs, n, &seed);
        let c = BranchClassifier::analyze(&p);
        let (oracle_class, oracle_pred) = oracle_classify(&p);

        prop_assert_eq!(c.rows().count(), oracle_class.len());
        for (b, class, pred) in c.rows() {
            prop_assert_eq!(class, oracle_class[&b], "class of {}", b);
            prop_assert_eq!(pred, oracle_pred[&b], "loop prediction of {}", b);
        }
        let order: Vec<BranchRef> = c.branches().map(|(b, _)| b).collect();
        prop_assert_eq!(order, p.branches(), "dense iteration is program order");

        // The BranchRef <-> BranchId side table round-trips.
        let t = c.branch_table();
        for (i, &b) in t.refs().iter().enumerate() {
            let id = t.id_of(b).expect("every enumerated branch has an id");
            prop_assert_eq!(id.index(), i);
            prop_assert_eq!(t.branch_ref(id), b);
        }
    }

    /// The dense heuristic matrix agrees cell-for-cell with direct
    /// heuristic evaluation keyed by hash.
    #[test]
    fn dense_heuristic_table_matches_hash_oracle(
        funcs in 1usize..3,
        n in 1usize..16,
        seed in proptest::collection::vec(any::<u8>(), 8..64),
    ) {
        let p = random_program(funcs, n, &seed);
        let c = BranchClassifier::analyze(&p);
        let t = HeuristicTable::build(&p, &c);
        let (oracle_class, _) = oracle_classify(&p);
        let oracle = oracle_table(&p, &oracle_class);

        prop_assert_eq!(t.rows().count(), oracle.len());
        for (b, row) in t.rows() {
            prop_assert_eq!(*row, oracle[&b], "heuristic row of {}", b);
            for kind in HeuristicKind::ALL {
                prop_assert_eq!(t.prediction(b, kind), oracle[&b][kind.index()]);
            }
        }
    }

    /// Classification survives a cache round trip through the dense
    /// row encoding (the engine's warm path) on arbitrary programs.
    #[test]
    fn cached_rows_reproduce_classification(
        funcs in 1usize..3,
        n in 1usize..16,
        seed in proptest::collection::vec(any::<u8>(), 8..64),
    ) {
        let p = random_program(funcs, n, &seed);
        let c = BranchClassifier::analyze(&p);
        let rows: Vec<_> = c.rows().collect();
        let rebuilt = BranchClassifier::from_cached(&p, &rows).expect("rows match");
        for b in p.branches() {
            prop_assert_eq!(rebuilt.class(b), c.class(b));
            prop_assert_eq!(rebuilt.loop_prediction(b), c.loop_prediction(b));
        }
    }
}
