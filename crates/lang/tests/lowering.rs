//! Tests that pin down the code-generation idioms the Ball–Larus
//! heuristics depend on: loop rotation, branch polarity, MIPS-style
//! condition selection, and SP/GP addressing.

use bpfree_cfg::FunctionAnalysis;
use bpfree_ir::{Cond, FuncId, Instr, Program, Reg, Terminator};
use bpfree_lang::{compile, compile_with, Options};

fn compile_ok(src: &str) -> Program {
    match compile(src) {
        Ok(p) => p,
        Err(e) => panic!("compile failed: {}", e.render(src)),
    }
}

/// Compile with CFG cleanup but without inlining, so tests can inspect
/// small helper functions by name.
fn compile_no_inline(src: &str) -> Program {
    match compile_with(src, Options::no_inline()) {
        Ok(p) => p,
        Err(e) => panic!("compile failed: {}", e.render(src)),
    }
}

/// Collects every branch condition in a function.
fn branch_conds(p: &Program, name: &str) -> Vec<Cond> {
    let (_, f) = p.func_by_name(name).unwrap();
    f.blocks()
        .iter()
        .filter_map(|b| match &b.term {
            Terminator::Branch { cond, .. } => Some(*cond),
            _ => None,
        })
        .collect()
}

#[test]
fn while_loop_is_rotated_with_guard_and_backedge() {
    let p = compile_ok(
        "fn main() -> int {
            int i;
            i = 0;
            while (i < 100) { i = i + 1; }
            return i;
        }",
    );
    let f = p.func(p.entry());
    let a = FunctionAnalysis::new(f);
    // Rotation produces exactly one natural loop whose backedge comes from
    // the replicated bottom test.
    assert_eq!(a.loops.n_loops(), 1);
    let mut backedges = Vec::new();
    for b in f.block_ids() {
        for &s in a.cfg.successors(b) {
            if a.loops.is_backedge(b, s) {
                backedges.push((b, s));
            }
        }
    }
    assert_eq!(backedges.len(), 1);
    let (latch, head) = backedges[0];
    // The latch branch takes the backedge on its *taken* side.
    match &f.block(latch).term {
        Terminator::Branch { taken, .. } => assert_eq!(*taken, head),
        other => panic!("latch should end in a branch, got {other:?}"),
    }
    // There are exactly two branches: the guard (non-loop shape) and the
    // latch (loop branch).
    assert_eq!(branch_conds(&p, "main").len(), 2);
}

#[test]
fn if_branches_over_then_block() {
    let p = compile_ok(
        "fn main() -> int {
            int x; int y;
            x = 5;
            if (x > 0) { y = 1; }
            return y;
        }",
    );
    let f = p.func(p.entry());
    // `if (x > 0)` branches on the NEGATED condition (x <= 0), so the
    // condition must be Lez with the then-block on the fall-through edge.
    let conds = branch_conds(&p, "main");
    assert_eq!(conds.len(), 1);
    assert!(matches!(conds[0], Cond::Lez(_)), "got {:?}", conds[0]);
    // Taken edge skips the then-block: the taken target contains no Move.
    let branch_block = f
        .block_ids()
        .find(|b| f.block(*b).term.is_branch())
        .unwrap();
    if let Terminator::Branch {
        taken, fallthru, ..
    } = &f.block(branch_block).term
    {
        let taken_has_store = !f.block(*taken).instrs.is_empty();
        let fall_has_store = !f.block(*fallthru).instrs.is_empty();
        assert!(!taken_has_store, "taken edge must skip the then block");
        assert!(
            fall_has_store,
            "fall-through edge must enter the then block"
        );
    }
}

#[test]
fn comparisons_against_zero_use_sign_tests() {
    let p = compile_no_inline(
        "fn f(int x) -> int {
            if (x < 0) { return 1; }
            if (x <= 0) { return 2; }
            if (x > 0) { return 3; }
            if (x >= 0) { return 4; }
            if (x == 0) { return 5; }
            if (x != 0) { return 6; }
            return 0;
        }
        fn main() -> int { return f(3); }",
    );
    let conds = branch_conds(&p, "f");
    // Each `if` is negated by branch-over lowering.
    assert!(matches!(conds[0], Cond::Gez(_))); // !(x < 0)
    assert!(matches!(conds[1], Cond::Gtz(_))); // !(x <= 0)
    assert!(matches!(conds[2], Cond::Lez(_))); // !(x > 0)
    assert!(matches!(conds[3], Cond::Ltz(_))); // !(x >= 0)
    assert!(matches!(conds[4], Cond::Nez(_))); // !(x == 0)
    assert!(matches!(conds[5], Cond::Eqz(_))); // !(x != 0)
}

#[test]
fn zero_on_left_mirrors_sign_tests() {
    let p = compile_no_inline(
        "fn f(int x) -> int {
            if (0 < x) { return 1; }
            return 0;
        }
        fn main() -> int { return f(1); }",
    );
    let conds = branch_conds(&p, "f");
    // 0 < x is Gtz(x); negated: Lez(x).
    assert!(matches!(conds[0], Cond::Lez(_)));
}

#[test]
fn pointer_equality_uses_beq_bne_forms() {
    let p = compile_no_inline(
        "fn f(ptr a, ptr b) -> int {
            if (a == b) { return 1; }
            if (a != null) { return 2; }
            return 0;
        }
        fn main() -> int { return f(null, null); }",
    );
    let conds = branch_conds(&p, "f");
    assert!(matches!(conds[0], Cond::Ne(_, _))); // !(a == b)
    assert!(matches!(conds[1], Cond::Eqz(_))); // !(a != null)
}

#[test]
fn general_relational_materialises_through_slt() {
    let p = compile_no_inline(
        "fn f(int a, int b) -> int {
            if (a < b) { return 1; }
            return 0;
        }
        fn main() -> int { return f(1, 2); }",
    );
    let (_, f) = p.func_by_name("f").unwrap();
    let has_slt = f.blocks().iter().flat_map(|b| &b.instrs).any(|i| {
        matches!(
            i,
            Instr::Bin {
                op: bpfree_ir::BinOp::Slt,
                ..
            }
        )
    });
    assert!(has_slt);
    let conds = branch_conds(&p, "f");
    assert!(matches!(conds[0], Cond::Eqz(_))); // !(slt result != 0)
}

#[test]
fn float_comparison_sets_flag_and_branches_on_it() {
    let p = compile_ok(
        "global float eps;
        fn main() -> int {
            float x;
            x = 1.5;
            if (x == eps) { return 1; }
            if (x < eps) { return 2; }
            return 0;
        }",
    );
    let (_, f) = p.func_by_name("main").unwrap();
    let cmps: Vec<_> = f
        .blocks()
        .iter()
        .flat_map(|b| &b.instrs)
        .filter(|i| matches!(i, Instr::CmpF { .. }))
        .collect();
    assert_eq!(cmps.len(), 2);
    let conds = branch_conds(&p, "main");
    // if (x == eps) negated -> FFalse; if (x < eps) negated -> FFalse.
    assert!(matches!(conds[0], Cond::FFalse));
    assert!(matches!(conds[1], Cond::FFalse));
}

#[test]
fn global_scalar_loads_off_gp() {
    let p = compile_ok(
        "global int n;
        fn main() -> int { return n; }",
    );
    let (_, f) = p.func_by_name("main").unwrap();
    let load = f
        .blocks()
        .iter()
        .flat_map(|b| &b.instrs)
        .find(|i| i.is_load())
        .unwrap();
    match load {
        Instr::Load { base, .. } => assert_eq!(*base, Reg::GP),
        other => panic!("expected Load, got {other}"),
    }
}

#[test]
fn constant_indexed_global_array_keeps_gp_base() {
    let p = compile_ok(
        "global int xs[4];
        fn main() -> int { return xs[2]; }",
    );
    let (_, f) = p.func_by_name("main").unwrap();
    let load = f
        .blocks()
        .iter()
        .flat_map(|b| &b.instrs)
        .find(|i| i.is_load())
        .unwrap();
    match load {
        Instr::Load { base, offset, .. } => {
            assert_eq!(*base, Reg::GP);
            assert_eq!(*offset, 2);
        }
        other => panic!("expected Load, got {other}"),
    }
}

#[test]
fn local_array_uses_sp_base() {
    let p = compile_ok(
        "fn main() -> int {
            int buf[8];
            buf[3] = 7;
            return buf[3];
        }",
    );
    let (_, f) = p.func_by_name("main").unwrap();
    assert_eq!(f.frame_words(), 8);
    let store = f
        .blocks()
        .iter()
        .flat_map(|b| &b.instrs)
        .find(|i| i.is_store())
        .unwrap();
    match store {
        Instr::Store { base, offset, .. } => {
            assert_eq!(*base, Reg::SP);
            assert_eq!(*offset, 3);
        }
        other => panic!("expected Store, got {other}"),
    }
}

#[test]
fn heap_access_goes_through_alloc_register() {
    let p = compile_ok(
        "fn main() -> int {
            ptr p;
            p = alloc(4);
            p[1] = 42;
            return p[1];
        }",
    );
    let (_, f) = p.func_by_name("main").unwrap();
    let instrs: Vec<_> = f.blocks().iter().flat_map(|b| &b.instrs).collect();
    assert!(instrs.iter().any(|i| matches!(i, Instr::Alloc { .. })));
    // The load must NOT be based on GP or SP.
    let load = instrs.iter().find(|i| i.is_load()).unwrap();
    match load {
        Instr::Load { base, .. } => {
            assert_ne!(*base, Reg::GP);
            assert_ne!(*base, Reg::SP);
        }
        other => panic!("expected Load, got {other}"),
    }
}

#[test]
fn short_circuit_and_creates_two_branches() {
    let p = compile_no_inline(
        "fn f(int a, int b) -> int {
            if (a > 0 && b > 0) { return 1; }
            return 0;
        }
        fn main() -> int { return f(1, 1); }",
    );
    let conds = branch_conds(&p, "f");
    assert_eq!(conds.len(), 2);
    assert!(matches!(conds[0], Cond::Lez(_)));
    assert!(matches!(conds[1], Cond::Lez(_)));
}

#[test]
fn short_circuit_or_first_test_branches_on_true() {
    let p = compile_no_inline(
        "fn f(int a, int b) -> int {
            if (a > 0 || b > 0) { return 1; }
            return 0;
        }
        fn main() -> int { return f(0, 1); }",
    );
    let conds = branch_conds(&p, "f");
    assert_eq!(conds.len(), 2);
    // First test of an || jumps to the then-block on TRUE: un-negated Gtz.
    assert!(matches!(conds[0], Cond::Gtz(_)));
    // Second test falls back to branch-over: negated.
    assert!(matches!(conds[1], Cond::Lez(_)));
}

#[test]
fn not_flips_polarity() {
    let p = compile_no_inline(
        "fn f(int a) -> int {
            if (!(a > 0)) { return 1; }
            return 0;
        }
        fn main() -> int { return f(1); }",
    );
    let conds = branch_conds(&p, "f");
    // if (!(a>0)): branch over then-block when (a>0): un-negated Gtz.
    assert_eq!(conds.len(), 1);
    assert!(matches!(conds[0], Cond::Gtz(_)));
}

#[test]
fn for_loop_rotates_and_continue_targets_step() {
    let src = "fn main() -> int {
        int i; int s;
        s = 0;
        for (i = 0; i < 10; i = i + 1) {
            if (i == 5) { continue; }
            s = s + i;
        }
        return s;
    }";
    let p = compile_ok(src);
    let f = p.func(p.entry());
    let a = FunctionAnalysis::new(f);
    assert_eq!(a.loops.n_loops(), 1);
    assert!(a.loops.is_reducible());
}

#[test]
fn do_while_has_no_guard() {
    let p = compile_ok(
        "fn main() -> int {
            int i;
            i = 0;
            do { i = i + 1; } while (i < 10);
            return i;
        }",
    );
    // A do-while needs only the bottom test: one branch total.
    assert_eq!(branch_conds(&p, "main").len(), 1);
}

#[test]
fn call_lowering_carries_arguments() {
    // The callee loops, which makes it big enough to survive the leaf
    // inliner, so the call instruction is observable.
    let p = compile_ok(
        "fn acc3(int a, int b, float c) -> float {
            float s; int i;
            for (i = 0; i < a + b; i = i + 1) { s = s + c + float(i * a - b); }
            for (i = 0; i < b; i = i + 1) { s = s * 0.99 + float(a); }
            return s;
        }
        fn main() -> int { return int(acc3(1, 2, 3.0)); }",
    );
    let (_, m) = p.func_by_name("main").unwrap();
    let call = m
        .blocks()
        .iter()
        .flat_map(|b| &b.instrs)
        .find(|i| i.is_call())
        .unwrap();
    match call {
        Instr::Call {
            callee,
            args,
            fargs,
            ret,
            fret,
        } => {
            assert_eq!(*callee, FuncId(0));
            assert_eq!(args.len(), 2);
            assert_eq!(fargs.len(), 1);
            assert!(ret.is_none());
            assert!(fret.is_some());
        }
        other => panic!("expected Call, got {other}"),
    }
}

#[test]
fn tiny_leaf_helpers_are_inlined() {
    let p = compile_ok(
        "fn sq(int x) -> int { return x * x; }
        fn main() -> int {
            int i; int s;
            for (i = 0; i < 10; i = i + 1) { s = s + sq(i); }
            return s;
        }",
    );
    let (_, m) = p.func_by_name("main").unwrap();
    assert!(
        !m.blocks()
            .iter()
            .any(|b| b.instrs.iter().any(|i| i.is_call())),
        "sq should have been inlined"
    );
    // And the program still computes the right answer.
    use bpfree_sim::{NullObserver, Simulator};
    let r = Simulator::new(&p).run(&mut NullObserver).unwrap();
    assert_eq!(r.exit, (0..10).map(|i| i * i).sum::<i64>());
}

#[test]
fn recursion_compiles() {
    let p = compile_ok(
        "fn fact(int n) -> int {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        fn main() -> int { return fact(5); }",
    );
    assert_eq!(p.funcs().len(), 2);
    assert!(p.validate().is_ok());
}

#[test]
fn dead_code_after_return_is_dropped() {
    let p = compile_ok(
        "fn main() -> int {
            return 1;
            return 2;
        }",
    );
    let f = p.func(p.entry());
    // Only the entry block with a single return.
    assert_eq!(f.blocks().len(), 1);
}

#[test]
fn if_where_both_arms_return_leaves_no_unreachable_blocks() {
    // The lowering creates an unreachable join, and the cleanup pass
    // removes it again.
    let p = compile_no_inline(
        "fn f(int x) -> int {
            if (x > 0) { return 1; } else { return 2; }
        }
        fn main() -> int { return f(1); }",
    );
    let (_, f) = p.func_by_name("f").unwrap();
    let a = FunctionAnalysis::new(f);
    let unreachable = f.block_ids().filter(|b| !a.dfs.is_reachable(*b)).count();
    assert_eq!(unreachable, 0);
    assert_eq!(f.blocks().len(), 3);
}

// ---- error cases ----

#[test]
fn unknown_variable_is_a_type_error() {
    let err = compile("fn main() -> int { return nope; }").unwrap_err();
    assert!(err.to_string().contains("unknown variable"));
}

#[test]
fn unknown_function_is_a_type_error() {
    let err = compile("fn main() -> int { return nope(); }").unwrap_err();
    assert!(err.to_string().contains("unknown function"));
}

#[test]
fn arity_mismatch_is_a_type_error() {
    let err = compile(
        "fn f(int a) -> int { return a; }
        fn main() -> int { return f(); }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("arguments"));
}

#[test]
fn float_where_word_needed_is_a_type_error() {
    let err = compile("fn main() -> int { return 1.5; }").unwrap_err();
    assert!(err.to_string().contains("float"));
}

#[test]
fn implicit_float_to_int_rejected_but_cast_accepted() {
    assert!(
        compile("fn f(float x) -> int { return x; } fn main() -> int { return f(1.0); }").is_err()
    );
    assert!(
        compile("fn f(float x) -> int { return int(x); } fn main() -> int { return f(1.0); }")
            .is_ok()
    );
}

#[test]
fn implicit_int_to_float_promotes() {
    let p = compile_ok("fn main() -> int { float x; x = 3; return int(x * 2.0); }");
    let (_, f) = p.func_by_name("main").unwrap();
    let has_cvt = f
        .blocks()
        .iter()
        .flat_map(|b| &b.instrs)
        .any(|i| matches!(i, Instr::CvtIF { .. }));
    assert!(has_cvt);
}

#[test]
fn break_outside_loop_rejected() {
    let err = compile("fn main() -> int { break; return 0; }").unwrap_err();
    assert!(err.to_string().contains("break"));
}

#[test]
fn continue_outside_loop_rejected() {
    let err = compile("fn main() -> int { continue; return 0; }").unwrap_err();
    assert!(err.to_string().contains("continue"));
}

#[test]
fn duplicate_global_rejected() {
    assert!(compile("global int a; global int a; fn main() -> int { return 0; }").is_err());
}

#[test]
fn duplicate_function_rejected() {
    assert!(compile("fn f() {} fn f() {} fn main() -> int { return 0; }").is_err());
}

#[test]
fn duplicate_local_in_same_scope_rejected() {
    assert!(compile("fn main() -> int { int a; int a; return 0; }").is_err());
}

#[test]
fn shadowing_in_inner_scope_allowed() {
    assert!(compile("fn main() -> int { int a; a = 1; { int a; a = 2; } return a; }").is_ok());
}

#[test]
fn constant_index_out_of_bounds_rejected() {
    let err = compile(
        "global int xs[4];
        fn main() -> int { return xs[4]; }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("out of bounds"));
}

#[test]
fn assign_to_bare_array_rejected() {
    let err = compile(
        "global int xs[4];
        fn main() -> int { xs = 1; return 0; }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("without an index"));
}

#[test]
fn builtin_redefinition_rejected() {
    assert!(
        compile("fn alloc(int n) -> ptr { return null; } fn main() -> int { return 0; }").is_err()
    );
}

#[test]
fn return_value_from_void_function_rejected() {
    assert!(compile("fn f() { return 1; } fn main() -> int { return 0; }").is_err());
}

#[test]
fn bare_return_from_valued_function_rejected() {
    assert!(compile("fn f() -> int { return; } fn main() -> int { return 0; }").is_err());
}

#[test]
fn rem_on_float_rejected() {
    assert!(compile("fn main() -> int { float x; x = 1.0 ; x = x % 2.0; return 0; }").is_err());
}

#[test]
fn all_generated_programs_validate() {
    // A kitchen-sink program stressing most constructs.
    let p = compile_ok(
        "global int data[64];
        global float weights[16];
        global int count;

        fn hash(int key) -> int {
            return (key * 2654435761) % 64;
        }

        fn find(ptr list, int key) -> ptr {
            while (list != null) {
                if (list[0] == key) { return list; }
                list = list[2];
            }
            return null;
        }

        fn average() -> float {
            float sum; int i;
            sum = 0.0;
            for (i = 0; i < 16; i = i + 1) { sum = sum + weights[i]; }
            return sum / 16.0;
        }

        fn main() -> int {
            ptr head; ptr node; int i;
            head = null;
            for (i = 0; i < 32; i = i + 1) {
                node = alloc(3);
                node[0] = hash(i);
                node[1] = i;
                node[2] = head;
                head = node;
            }
            node = find(head, hash(7));
            if (node == null) { return -1; }
            if (average() > 0.5) { count = count + 1; }
            return node[1];
        }",
    );
    assert!(p.validate().is_ok());
    // Every function should be loop-analyzable and reducible.
    for f in p.funcs() {
        let a = FunctionAnalysis::new(f);
        assert!(a.loops.is_reducible(), "{} irreducible", f.name());
    }
}

#[test]
fn program_with_no_functions_is_an_error_not_a_panic() {
    // Regression: the dead-function pass used to index into an empty
    // function list (found by the garbage-input fuzz test).
    let err = compile("global int only_data[4];").unwrap_err();
    assert!(err.to_string().contains("no functions"), "{err}");
}

#[test]
fn optimisation_levels_preserve_semantics_on_a_real_program() {
    use bpfree_sim::{NullObserver, Simulator};
    let src = "global int t[8];
    fn fill(int k) -> int {
        int i;
        for (i = 0; i < 8; i = i + 1) { t[i] = i * k % 7; }
        return t[3];
    }
    fn main() -> int {
        int a; int b;
        a = fill(3);
        b = fill(5);
        return a * 100 + b;
    }";
    let o0 = compile_with(src, Options::o0()).unwrap();
    let o2 = compile(src).unwrap();
    let r0 = Simulator::new(&o0).run(&mut NullObserver).unwrap();
    let r2 = Simulator::new(&o2).run(&mut NullObserver).unwrap();
    assert_eq!(r0.exit, r2.exit);
    // Optimisation should not grow the instruction count here.
    assert!(
        r2.instructions <= r0.instructions,
        "{} vs {}",
        r2.instructions,
        r0.instructions
    );
}
