//! Differential property tests: randomly generated Cmm expressions are
//! compiled and interpreted, and the result must match a Rust-side
//! reference evaluator with the same semantics (wrapping arithmetic,
//! division by zero yields zero, shifts mod 64).

use bpfree_lang::{compile, compile_with, Options};
use bpfree_sim::{NullObserver, SimConfig, Simulator};
use proptest::prelude::*;

/// A little expression AST mirrored on both sides.
#[derive(Debug, Clone)]
#[allow(clippy::enum_variant_names)] // `EqE` avoids clashing with `Eq`
enum E {
    Lit(i32),
    Var(usize),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Div(Box<E>, Box<E>),
    Rem(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Or(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Lt(Box<E>, Box<E>),
    Le(Box<E>, Box<E>),
    EqE(Box<E>, Box<E>),
    Ne(Box<E>, Box<E>),
    LAnd(Box<E>, Box<E>),
    LOr(Box<E>, Box<E>),
    Neg(Box<E>),
    Not(Box<E>),
}

const N_VARS: usize = 4;

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        (-1000i32..1000).prop_map(E::Lit),
        (0usize..N_VARS).prop_map(E::Var),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Div(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Rem(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Lt(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Le(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::EqE(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Ne(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::LAnd(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::LOr(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.prop_map(|a| E::Not(Box::new(a))),
        ]
    })
}

fn to_cmm(e: &E) -> String {
    match e {
        E::Lit(v) => {
            if *v < 0 {
                format!("(0 - {})", -(*v as i64))
            } else {
                format!("{v}")
            }
        }
        E::Var(i) => format!("v{i}"),
        E::Add(a, b) => format!("({} + {})", to_cmm(a), to_cmm(b)),
        E::Sub(a, b) => format!("({} - {})", to_cmm(a), to_cmm(b)),
        E::Mul(a, b) => format!("({} * {})", to_cmm(a), to_cmm(b)),
        E::Div(a, b) => format!("({} / {})", to_cmm(a), to_cmm(b)),
        E::Rem(a, b) => format!("({} % {})", to_cmm(a), to_cmm(b)),
        E::And(a, b) => format!("({} & {})", to_cmm(a), to_cmm(b)),
        E::Or(a, b) => format!("({} | {})", to_cmm(a), to_cmm(b)),
        E::Xor(a, b) => format!("({} ^ {})", to_cmm(a), to_cmm(b)),
        E::Lt(a, b) => format!("({} < {})", to_cmm(a), to_cmm(b)),
        E::Le(a, b) => format!("({} <= {})", to_cmm(a), to_cmm(b)),
        E::EqE(a, b) => format!("({} == {})", to_cmm(a), to_cmm(b)),
        E::Ne(a, b) => format!("({} != {})", to_cmm(a), to_cmm(b)),
        E::LAnd(a, b) => format!("({} && {})", to_cmm(a), to_cmm(b)),
        E::LOr(a, b) => format!("({} || {})", to_cmm(a), to_cmm(b)),
        E::Neg(a) => format!("(-{})", to_cmm(a)),
        E::Not(a) => format!("(!{})", to_cmm(a)),
    }
}

fn reference_eval(e: &E, vars: &[i64; N_VARS]) -> i64 {
    match e {
        E::Lit(v) => *v as i64,
        E::Var(i) => vars[*i],
        E::Add(a, b) => reference_eval(a, vars).wrapping_add(reference_eval(b, vars)),
        E::Sub(a, b) => reference_eval(a, vars).wrapping_sub(reference_eval(b, vars)),
        E::Mul(a, b) => reference_eval(a, vars).wrapping_mul(reference_eval(b, vars)),
        E::Div(a, b) => {
            let d = reference_eval(b, vars);
            if d == 0 {
                0
            } else {
                reference_eval(a, vars).wrapping_div(d)
            }
        }
        E::Rem(a, b) => {
            let d = reference_eval(b, vars);
            if d == 0 {
                0
            } else {
                reference_eval(a, vars).wrapping_rem(d)
            }
        }
        E::And(a, b) => reference_eval(a, vars) & reference_eval(b, vars),
        E::Or(a, b) => reference_eval(a, vars) | reference_eval(b, vars),
        E::Xor(a, b) => reference_eval(a, vars) ^ reference_eval(b, vars),
        E::Lt(a, b) => (reference_eval(a, vars) < reference_eval(b, vars)) as i64,
        E::Le(a, b) => (reference_eval(a, vars) <= reference_eval(b, vars)) as i64,
        E::EqE(a, b) => (reference_eval(a, vars) == reference_eval(b, vars)) as i64,
        E::Ne(a, b) => (reference_eval(a, vars) != reference_eval(b, vars)) as i64,
        E::LAnd(a, b) => (reference_eval(a, vars) != 0 && reference_eval(b, vars) != 0) as i64,
        E::LOr(a, b) => (reference_eval(a, vars) != 0 || reference_eval(b, vars) != 0) as i64,
        E::Neg(a) => 0i64.wrapping_sub(reference_eval(a, vars)),
        E::Not(a) => (reference_eval(a, vars) == 0) as i64,
    }
}

fn run_program(src: &str, opts: Options) -> i64 {
    let p = compile_with(src, opts).unwrap_or_else(|e| panic!("{}\n{src}", e.render(src)));
    let cfg = SimConfig {
        fuel: 10_000_000,
        ..SimConfig::default()
    };
    Simulator::with_config(&p, cfg)
        .run(&mut NullObserver)
        .unwrap_or_else(|e| panic!("{e}\n{src}"))
        .exit
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Compiled expression evaluation matches the reference evaluator,
    /// at -O0 and at full optimisation (the passes are semantics-
    /// preserving).
    #[test]
    fn expressions_match_reference(e in arb_expr(), vars in [-50i64..50, -50i64..50, -50i64..50, -50i64..50]) {
        let src = format!(
            "fn main() -> int {{
                int v0; int v1; int v2; int v3;
                v0 = {}; v1 = {}; v2 = {}; v3 = {};
                return {};
            }}",
            vars[0], vars[1], vars[2], vars[3], to_cmm(&e)
        );
        let expected = reference_eval(&e, &vars);
        prop_assert_eq!(run_program(&src, Options::default()), expected, "optimised\n{}", src);
        prop_assert_eq!(run_program(&src, Options::o0()), expected, "-O0\n{}", src);
    }

    /// Expressions used as conditions agree with truthiness of the
    /// reference value.
    #[test]
    fn conditions_match_reference(e in arb_expr(), vars in [-20i64..20, -20i64..20, -20i64..20, -20i64..20]) {
        let src = format!(
            "fn main() -> int {{
                int v0; int v1; int v2; int v3;
                v0 = {}; v1 = {}; v2 = {}; v3 = {};
                if ({}) {{ return 1; }}
                return 0;
            }}",
            vars[0], vars[1], vars[2], vars[3], to_cmm(&e)
        );
        let expected = (reference_eval(&e, &vars) != 0) as i64;
        prop_assert_eq!(run_program(&src, Options::default()), expected, "{}", src);
    }

    /// Compilation never panics on arbitrary token soup (errors are
    /// returned, not thrown).
    #[test]
    fn compiler_total_on_garbage(s in "[a-z0-9(){};=<>!&|+*/%, \n-]{0,200}") {
        let _ = compile(&s);
    }
}
