//! Display ⇄ parse round-trip: every program the compiler can produce
//! must print to text that parses back to an identical program.

use bpfree_ir::parse_program;
use bpfree_lang::compile;
use proptest::prelude::*;

fn roundtrip(src: &str) {
    let p = compile(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
    let text = p.to_string();
    let q = parse_program(&text)
        .unwrap_or_else(|e| panic!("parse-back failed: {e}\n--- text ---\n{text}"));
    assert_eq!(p, q, "round-trip mismatch\n--- text ---\n{text}");
}

#[test]
fn roundtrips_kitchen_sink() {
    roundtrip(
        "global int data[16];
        global float ws[4];
        global int n;
        fn hash(int key) -> int { return key * 31 % 97; }
        fn scan(ptr list, int k) -> int {
            while (list != null) {
                if (list[0] == k) { return 1; }
                list = list[1];
            }
            return 0;
        }
        fn avg() -> float {
            float s; int i;
            for (i = 0; i < 4; i = i + 1) { s = s + ws[i]; }
            return s / 4.0;
        }
        fn main() -> int {
            ptr head; int i; int found;
            int buf[8];
            for (i = 0; i < 10; i = i + 1) {
                ptr cell;
                cell = alloc(2);
                cell[0] = hash(i + 100);
                cell[1] = head;
                head = cell;
                buf[i % 8] = i;
            }
            found = scan(head, hash(105));
            if (avg() > 0.25 && found != 0) { n = n + 1; }
            return found * 10 + buf[3];
        }",
    );
}

#[test]
fn roundtrips_every_suite_benchmark() {
    for b in bpfree_suite::all() {
        let p = b.compile().unwrap();
        let text = p.to_string();
        let q =
            parse_program(&text).unwrap_or_else(|e| panic!("{}: parse-back failed: {e}", b.name));
        assert_eq!(p, q, "{} round-trip mismatch", b.name);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random-ish expression programs round-trip too (negative literals,
    /// floats, nested control flow).
    #[test]
    fn roundtrips_generated_programs(
        a in -1000i64..1000,
        f in -100.0f64..100.0,
        loops in 1u8..4,
    ) {
        let mut body = String::new();
        for l in 0..loops {
            body.push_str(&format!(
                "for (i = 0; i < {}; i = i + 1) {{
                    if (i % {} == 0) {{ s = s + i + {a}; }}
                    acc = acc + {f:?} * float(i);
                 }}\n",
                5 + l as i64 * 3,
                l + 2,
            ));
        }
        let src = format!(
            "global float acc;
             fn main() -> int {{
                int i; int s;
                {body}
                return s;
             }}"
        );
        let p = compile(&src).unwrap_or_else(|e| panic!("{}", e.render(&src)));
        let q = parse_program(&p.to_string()).unwrap();
        prop_assert_eq!(p, q);
    }
}
