//! Lowering from the Cmm AST to the MIPS-flavoured IR.
//!
//! Code generation idioms (all load-bearing for the paper's heuristics):
//!
//! * `if` statements branch **on the negated condition** with the else/join
//!   side on the taken edge (branch-over style, like MIPS compilers);
//! * `while`/`for` loops are **rotated**: a guard branch around a do-until
//!   body with the test replicated at the bottom; the bottom test branches
//!   back on the *true* condition so the backedge is the taken edge;
//! * comparisons against zero use the sign-test conditions
//!   (`blez`/`bltz`/`bgez`/`bgtz` analogues), equality tests use
//!   `beq`/`bne` analogues, other relational tests materialise through
//!   `slt`/`sle`, and float comparisons set the FP condition flag;
//! * global scalars and constant-indexed global arrays are addressed
//!   directly off `$gp`; local arrays off `$sp`; heap cells off ordinary
//!   registers.

use std::collections::HashMap;

use bpfree_ir::{
    BinOp as IrBinOp, BlockId, Cond, FBinOp, FCmp, FReg, FuncId, FunctionBuilder, GlobalSym, Instr,
    Program, ProgramBuilder, Reg, Terminator,
};

use crate::ast::{BinOp, Expr, ExprKind, Item, Program as Ast, Stmt, StmtKind, Type, UnOp};
use crate::error::CompileError;
use crate::lexer::Span;

/// Lowers a parsed program to validated IR, running the optimisation
/// passes selected by `options`.
pub fn lower(ast: &Ast, options: crate::Options) -> Result<Program, CompileError> {
    // Pass 1: lay out globals.
    let mut globals: HashMap<String, GlobalInfo> = HashMap::new();
    let mut next_off = 0i64;
    for item in &ast.items {
        if let Item::Global {
            ty,
            name,
            size,
            span,
        } = item
        {
            if globals.contains_key(name) {
                return Err(CompileError::ty(
                    format!("duplicate global `{name}`"),
                    *span,
                ));
            }
            let len = size.unwrap_or(1);
            globals.insert(
                name.clone(),
                GlobalInfo {
                    off: next_off,
                    len,
                    ty: *ty,
                    array: size.is_some(),
                },
            );
            next_off += len;
        }
    }
    let globals_words = next_off;

    // Pass 2: collect function signatures.
    let mut sigs: HashMap<String, FuncSig> = HashMap::new();
    let mut order: Vec<&Item> = Vec::new();
    for item in &ast.items {
        if let Item::Function {
            name,
            params,
            ret,
            span,
            ..
        } = item
        {
            if sigs.contains_key(name) {
                return Err(CompileError::ty(
                    format!("duplicate function `{name}`"),
                    *span,
                ));
            }
            if matches!(name.as_str(), "alloc" | "int" | "float") {
                return Err(CompileError::ty(
                    format!("`{name}` is a builtin and cannot be redefined"),
                    *span,
                ));
            }
            if globals.contains_key(name) {
                return Err(CompileError::ty(
                    format!("`{name}` is already a global"),
                    *span,
                ));
            }
            sigs.insert(
                name.clone(),
                FuncSig {
                    id: FuncId(order.len() as u32),
                    params: params.iter().map(|(t, _)| *t).collect(),
                    ret: *ret,
                },
            );
            order.push(item);
        }
    }

    // Pass 3: lower each function, then run the optimisation pipeline:
    // leaf inlining (so helper calls vanish like 1990s macros), block
    // straightening, unreachable-block removal, and copy propagation.
    let mut funcs = Vec::with_capacity(order.len());
    for item in order {
        let Item::Function {
            name,
            params,
            ret,
            body,
            span,
        } = item
        else {
            unreachable!()
        };
        funcs.push(FnLower::new(name, params, *ret, &globals, &sigs).lower_body(body, *span)?);
    }
    if options.inline {
        crate::inline::inline_program(&mut funcs);
        crate::inline::eliminate_dead(&mut funcs);
    }
    let mut pb = ProgramBuilder::new();
    for f in funcs {
        pb.add_function(if options.simplify {
            crate::passes::simplify(f)
        } else {
            f
        });
    }
    for (name, g) in &globals {
        pb.add_global(
            name.clone(),
            GlobalSym {
                offset: g.off,
                len: g.len,
                is_float: g.ty == Type::Float,
            },
        );
    }
    pb.finish(globals_words)
        .map_err(|e| CompileError::internal(format!("generated invalid IR: {e}")))
}

#[derive(Debug, Clone, Copy)]
struct GlobalInfo {
    off: i64,
    len: i64,
    ty: Type,
    array: bool,
}

#[derive(Debug, Clone)]
struct FuncSig {
    id: FuncId,
    params: Vec<Type>,
    ret: Option<Type>,
}

/// A value held in a register.
#[derive(Debug, Clone, Copy)]
enum Value {
    Word(Reg),
    Float(FReg),
}

/// A local binding.
#[derive(Debug, Clone, Copy)]
enum Local {
    Word(Reg),
    Float(FReg),
    /// A local array in the SP-addressed frame.
    Array {
        off: i64,
        len: i64,
        float: bool,
    },
}

/// Which CFG edge the "interesting" target should sit on when emitting a
/// branch — mirrors how a code generator linearises code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Polarity {
    /// Branch on the negated condition; the false target is the taken
    /// edge (branch-over, the `if` statement shape).
    FalseTaken,
    /// Branch on the condition itself; the true target is the taken edge
    /// (branch-back, the loop latch shape).
    TrueTaken,
}

impl Polarity {
    fn flip(self) -> Polarity {
        match self {
            Polarity::FalseTaken => Polarity::TrueTaken,
            Polarity::TrueTaken => Polarity::FalseTaken,
        }
    }
}

struct FnLower<'a> {
    b: FunctionBuilder,
    cur: BlockId,
    terminated: bool,
    globals: &'a HashMap<String, GlobalInfo>,
    sigs: &'a HashMap<String, FuncSig>,
    scopes: Vec<HashMap<String, Local>>,
    /// (break target, continue target) for each enclosing loop.
    loop_stack: Vec<(BlockId, BlockId)>,
    ret: Option<Type>,
}

impl<'a> FnLower<'a> {
    fn new(
        name: &str,
        params: &[(Type, String)],
        ret: Option<Type>,
        globals: &'a HashMap<String, GlobalInfo>,
        sigs: &'a HashMap<String, FuncSig>,
    ) -> FnLower<'a> {
        let mut b = FunctionBuilder::new(name);
        let mut scope = HashMap::new();
        for (ty, pname) in params {
            let local = match ty {
                Type::Float => Local::Float(b.add_fparam()),
                Type::Int | Type::Ptr => Local::Word(b.add_param()),
            };
            scope.insert(pname.clone(), local);
        }
        let cur = b.entry();
        FnLower {
            b,
            cur,
            terminated: false,
            globals,
            sigs,
            scopes: vec![scope],
            loop_stack: Vec::new(),
            ret,
        }
    }

    fn lower_body(
        mut self,
        body: &[Stmt],
        span: Span,
    ) -> Result<bpfree_ir::Function, CompileError> {
        self.stmts(body)?;
        if !self.terminated {
            // Falling off the end returns zero (of the declared type).
            let term = match self.ret {
                Some(Type::Float) => {
                    let f = self.b.new_freg();
                    self.emit(Instr::LiF { fd: f, imm: 0.0 });
                    Terminator::Ret {
                        val: None,
                        fval: Some(f),
                    }
                }
                Some(_) => {
                    let r = self.b.new_reg();
                    self.emit(Instr::Li { rd: r, imm: 0 });
                    Terminator::Ret {
                        val: Some(r),
                        fval: None,
                    }
                }
                None => Terminator::Ret {
                    val: None,
                    fval: None,
                },
            };
            self.b.set_term(self.cur, term);
        }
        self.b
            .finish()
            .map_err(|e| CompileError::ty(format!("internal lowering error: {e}"), span))
    }

    // ---- helpers ----

    fn emit(&mut self, i: Instr) {
        debug_assert!(!self.terminated);
        self.b.push(self.cur, i);
    }

    fn switch_to(&mut self, blk: BlockId) {
        self.cur = blk;
        self.terminated = false;
    }

    fn terminate(&mut self, t: Terminator) {
        self.b.set_term(self.cur, t);
        self.terminated = true;
    }

    fn lookup(&self, name: &str) -> Option<Local> {
        for scope in self.scopes.iter().rev() {
            if let Some(l) = scope.get(name) {
                return Some(*l);
            }
        }
        None
    }

    fn declare(&mut self, name: &str, local: Local, span: Span) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(name) {
            return Err(CompileError::ty(
                format!("`{name}` already declared in this scope"),
                span,
            ));
        }
        scope.insert(name.to_string(), local);
        Ok(())
    }

    fn expect_word(&self, v: Value, span: Span) -> Result<Reg, CompileError> {
        match v {
            Value::Word(r) => Ok(r),
            Value::Float(_) => Err(CompileError::ty(
                "expected an integer or pointer value, found float".into(),
                span,
            )),
        }
    }

    /// Coerces `v` to float, inserting an int-to-float conversion.
    fn coerce_float(&mut self, v: Value) -> FReg {
        match v {
            Value::Float(f) => f,
            Value::Word(r) => {
                let f = self.b.new_freg();
                self.emit(Instr::CvtIF { fd: f, rs: r });
                f
            }
        }
    }

    // ---- statements ----

    fn stmts(&mut self, body: &[Stmt]) -> Result<(), CompileError> {
        for stmt in body {
            if self.terminated {
                // Dead code after break/continue/return: skip, like a
                // compiler dropping unreachable statements.
                break;
            }
            self.stmt(stmt)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), CompileError> {
        let span = stmt.span;
        match &stmt.kind {
            StmtKind::Decl { ty, name, size } => {
                let local = match (size, ty) {
                    (None, Type::Float) => {
                        let f = self.b.new_freg();
                        self.emit(Instr::LiF { fd: f, imm: 0.0 });
                        Local::Float(f)
                    }
                    (None, _) => {
                        let r = self.b.new_reg();
                        self.emit(Instr::Li { rd: r, imm: 0 });
                        Local::Word(r)
                    }
                    (Some(n), ty) => {
                        if *ty == Type::Ptr {
                            return Err(CompileError::ty(
                                "arrays of `ptr` are spelled `int name[N]` (words)".into(),
                                span,
                            ));
                        }
                        let off = self.b.reserve_frame(*n);
                        Local::Array {
                            off,
                            len: *n,
                            float: *ty == Type::Float,
                        }
                    }
                };
                self.declare(name, local, span)
            }
            StmtKind::Assign { target, value } => self.assign(target, value),
            StmtKind::ExprStmt(e) => {
                self.expr(e)?;
                Ok(())
            }
            StmtKind::Return(value) => {
                let term = match (value, self.ret) {
                    (Some(e), Some(Type::Float)) => {
                        let v = self.expr(e)?;
                        let f = self.coerce_float(v);
                        Terminator::Ret {
                            val: None,
                            fval: Some(f),
                        }
                    }
                    (Some(e), Some(_)) => {
                        let v = self.expr(e)?;
                        let r = self.expect_word(v, e.span)?;
                        Terminator::Ret {
                            val: Some(r),
                            fval: None,
                        }
                    }
                    (Some(e), None) => {
                        return Err(CompileError::ty(
                            "returning a value from a function with no return type".into(),
                            e.span,
                        ))
                    }
                    (None, Some(_)) => {
                        return Err(CompileError::ty(
                            "this function must return a value".into(),
                            span,
                        ))
                    }
                    (None, None) => Terminator::Ret {
                        val: None,
                        fval: None,
                    },
                };
                self.terminate(term);
                Ok(())
            }
            StmtKind::Break => match self.loop_stack.last() {
                Some(&(brk, _)) => {
                    self.terminate(Terminator::Jump(brk));
                    Ok(())
                }
                None => Err(CompileError::ty("`break` outside of a loop".into(), span)),
            },
            StmtKind::Continue => match self.loop_stack.last() {
                Some(&(_, cont)) => {
                    self.terminate(Terminator::Jump(cont));
                    Ok(())
                }
                None => Err(CompileError::ty(
                    "`continue` outside of a loop".into(),
                    span,
                )),
            },
            StmtKind::Block(body) => {
                self.scopes.push(HashMap::new());
                let r = self.stmts(body);
                self.scopes.pop();
                r
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let then_blk = self.b.new_block();
                let join = self.b.new_block();
                let else_blk = if else_body.is_empty() {
                    join
                } else {
                    self.b.new_block()
                };
                self.cond(cond, then_blk, else_blk, Polarity::FalseTaken)?;

                self.switch_to(then_blk);
                self.scopes.push(HashMap::new());
                self.stmts(then_body)?;
                self.scopes.pop();
                let then_done = self.terminated;
                if !then_done {
                    self.terminate(Terminator::Jump(join));
                }

                let mut else_done = false;
                if !else_body.is_empty() {
                    self.switch_to(else_blk);
                    self.scopes.push(HashMap::new());
                    self.stmts(else_body)?;
                    self.scopes.pop();
                    else_done = self.terminated;
                    if !else_done {
                        self.terminate(Terminator::Jump(join));
                    }
                }

                self.switch_to(join);
                if then_done && (else_done || else_body.is_empty()) && !else_body.is_empty() {
                    // Both arms terminated: the join is unreachable.
                    self.terminate(Terminator::Ret {
                        val: None,
                        fval: None,
                    });
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                // Rotated: guard, body (loop head), replicated bottom test.
                let body_blk = self.b.new_block();
                let latch = self.b.new_block();
                let exit = self.b.new_block();
                self.cond(cond, body_blk, exit, Polarity::FalseTaken)?;

                self.switch_to(body_blk);
                self.loop_stack.push((exit, latch));
                self.scopes.push(HashMap::new());
                self.stmts(body)?;
                self.scopes.pop();
                self.loop_stack.pop();
                if !self.terminated {
                    self.terminate(Terminator::Jump(latch));
                }

                self.switch_to(latch);
                self.cond(cond, body_blk, exit, Polarity::TrueTaken)?;
                self.switch_to(exit);
                Ok(())
            }
            StmtKind::DoWhile { body, cond } => {
                let body_blk = self.b.new_block();
                let latch = self.b.new_block();
                let exit = self.b.new_block();
                self.terminate(Terminator::Jump(body_blk));

                self.switch_to(body_blk);
                self.loop_stack.push((exit, latch));
                self.scopes.push(HashMap::new());
                self.stmts(body)?;
                self.scopes.pop();
                self.loop_stack.pop();
                if !self.terminated {
                    self.terminate(Terminator::Jump(latch));
                }

                self.switch_to(latch);
                self.cond(cond, body_blk, exit, Polarity::TrueTaken)?;
                self.switch_to(exit);
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(init) = init {
                    self.stmt(init)?;
                }
                let body_blk = self.b.new_block();
                let step_blk = self.b.new_block();
                let exit = self.b.new_block();
                match cond {
                    Some(c) => self.cond(c, body_blk, exit, Polarity::FalseTaken)?,
                    None => self.terminate(Terminator::Jump(body_blk)),
                }

                self.switch_to(body_blk);
                self.loop_stack.push((exit, step_blk));
                self.scopes.push(HashMap::new());
                self.stmts(body)?;
                self.scopes.pop();
                self.loop_stack.pop();
                if !self.terminated {
                    self.terminate(Terminator::Jump(step_blk));
                }

                self.switch_to(step_blk);
                if let Some(step) = step {
                    self.stmt(step)?;
                }
                match cond {
                    Some(c) => self.cond(c, body_blk, exit, Polarity::TrueTaken)?,
                    None => self.terminate(Terminator::Jump(body_blk)),
                }
                self.scopes.pop();
                self.switch_to(exit);
                Ok(())
            }
        }
    }

    fn assign(&mut self, target: &Expr, value: &Expr) -> Result<(), CompileError> {
        match &target.kind {
            ExprKind::Var(name) => {
                if let Some(local) = self.lookup(name) {
                    match local {
                        Local::Word(reg) => {
                            let v = self.expr(value)?;
                            let r = self.expect_word(v, value.span)?;
                            self.emit(Instr::Move { rd: reg, rs: r });
                            Ok(())
                        }
                        Local::Float(freg) => {
                            let v = self.expr(value)?;
                            let f = self.coerce_float(v);
                            self.emit(Instr::MoveF { fd: freg, fs: f });
                            Ok(())
                        }
                        Local::Array { .. } => Err(CompileError::ty(
                            format!("cannot assign to array `{name}` without an index"),
                            target.span,
                        )),
                    }
                } else if let Some(&g) = self.globals.get(name) {
                    if g.array {
                        return Err(CompileError::ty(
                            format!("cannot assign to array `{name}` without an index"),
                            target.span,
                        ));
                    }
                    match g.ty {
                        Type::Float => {
                            let v = self.expr(value)?;
                            let f = self.coerce_float(v);
                            self.emit(Instr::StoreF {
                                fs: f,
                                base: Reg::GP,
                                offset: g.off,
                            });
                        }
                        _ => {
                            let v = self.expr(value)?;
                            let r = self.expect_word(v, value.span)?;
                            self.emit(Instr::Store {
                                rs: r,
                                base: Reg::GP,
                                offset: g.off,
                            });
                        }
                    }
                    Ok(())
                } else {
                    Err(CompileError::ty(
                        format!("unknown variable `{name}`"),
                        target.span,
                    ))
                }
            }
            ExprKind::Index { base, index } => {
                let (base_reg, offset, is_float) = self.element_access(base, index)?;
                if is_float {
                    let v = self.expr(value)?;
                    let f = self.coerce_float(v);
                    self.emit(Instr::StoreF {
                        fs: f,
                        base: base_reg,
                        offset,
                    });
                } else {
                    let v = self.expr(value)?;
                    let r = self.expect_word(v, value.span)?;
                    self.emit(Instr::Store {
                        rs: r,
                        base: base_reg,
                        offset,
                    });
                }
                Ok(())
            }
            _ => Err(CompileError::ty(
                "invalid assignment target".into(),
                target.span,
            )),
        }
    }

    /// Computes the addressing for `base[index]`: a base register, a
    /// constant word offset, and whether the element is a float.
    ///
    /// Constant indices into named arrays keep `$gp`/`$sp` as the base
    /// register (direct addressing); everything else computes
    /// `base + index` into a temporary.
    fn element_access(
        &mut self,
        base: &Expr,
        index: &Expr,
    ) -> Result<(Reg, i64, bool), CompileError> {
        // Named array (local or global)?
        if let ExprKind::Var(name) = &base.kind {
            if let Some(Local::Array { off, len, float }) = self.lookup(name) {
                return self.array_access(Reg::SP, off, len, float, index);
            }
            if self.lookup(name).is_none() {
                if let Some(&g) = self.globals.get(name) {
                    if g.array {
                        return self.array_access(
                            Reg::GP,
                            g.off,
                            g.len,
                            g.ty == Type::Float,
                            index,
                        );
                    }
                }
            }
        }
        // General pointer access: evaluate base to a word register.
        let v = self.expr(base)?;
        let ptr = self.expect_word(v, base.span)?;
        match const_index(index) {
            Some(k) => Ok((ptr, k, false)),
            None => {
                let iv = self.expr(index)?;
                let idx = self.expect_word(iv, index.span)?;
                let t = self.b.new_reg();
                self.emit(Instr::Bin {
                    op: IrBinOp::Add,
                    rd: t,
                    rs: ptr,
                    rt: idx,
                });
                Ok((t, 0, false))
            }
        }
    }

    fn array_access(
        &mut self,
        base: Reg,
        off: i64,
        len: i64,
        float: bool,
        index: &Expr,
    ) -> Result<(Reg, i64, bool), CompileError> {
        match const_index(index) {
            Some(k) => {
                if k < 0 || k >= len {
                    return Err(CompileError::ty(
                        format!("constant index {k} out of bounds for array of {len}"),
                        index.span,
                    ));
                }
                Ok((base, off + k, float))
            }
            None => {
                let iv = self.expr(index)?;
                let idx = self.expect_word(iv, index.span)?;
                let t = self.b.new_reg();
                self.emit(Instr::Bin {
                    op: IrBinOp::Add,
                    rd: t,
                    rs: base,
                    rt: idx,
                });
                Ok((t, off, float))
            }
        }
    }

    // ---- conditions ----

    /// Lowers `e` as control flow: jump to `t_blk` if true, `f_blk` if
    /// false. Terminates the current block.
    fn cond(
        &mut self,
        e: &Expr,
        t_blk: BlockId,
        f_blk: BlockId,
        pol: Polarity,
    ) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Unary {
                op: UnOp::Not,
                expr,
            } => self.cond(expr, f_blk, t_blk, pol.flip()),
            ExprKind::Binary {
                op: BinOp::LAnd,
                lhs,
                rhs,
            } => {
                let mid = self.b.new_block();
                self.cond(lhs, mid, f_blk, Polarity::FalseTaken)?;
                self.switch_to(mid);
                self.cond(rhs, t_blk, f_blk, pol)
            }
            ExprKind::Binary {
                op: BinOp::LOr,
                lhs,
                rhs,
            } => {
                let mid = self.b.new_block();
                self.cond(lhs, t_blk, mid, Polarity::TrueTaken)?;
                self.switch_to(mid);
                self.cond(rhs, t_blk, f_blk, pol)
            }
            ExprKind::Binary { op, lhs, rhs } if op.is_comparison() => {
                let c = self.comparison(*op, lhs, rhs)?;
                self.branch(c, t_blk, f_blk, pol);
                Ok(())
            }
            _ => {
                // Truthiness of a value: nonzero.
                let v = self.expr(e)?;
                let c = match v {
                    Value::Word(r) => Cond::Nez(r),
                    Value::Float(f) => {
                        let zero = self.b.new_freg();
                        self.emit(Instr::LiF { fd: zero, imm: 0.0 });
                        self.emit(Instr::CmpF {
                            cmp: FCmp::Eq,
                            fs: f,
                            ft: zero,
                        });
                        Cond::FFalse
                    }
                };
                self.branch(c, t_blk, f_blk, pol);
                Ok(())
            }
        }
    }

    fn branch(&mut self, c: Cond, t_blk: BlockId, f_blk: BlockId, pol: Polarity) {
        let term = match pol {
            Polarity::TrueTaken => Terminator::Branch {
                cond: c,
                taken: t_blk,
                fallthru: f_blk,
            },
            Polarity::FalseTaken => Terminator::Branch {
                cond: c.negated(),
                taken: f_blk,
                fallthru: t_blk,
            },
        };
        self.terminate(term);
    }

    /// Emits the comparison `lhs op rhs` and returns the branch condition
    /// that is true when the comparison holds.
    fn comparison(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<Cond, CompileError> {
        if self.is_floatish(lhs) || self.is_floatish(rhs) {
            let lv = self.expr(lhs)?;
            let lf = self.coerce_float(lv);
            let rv = self.expr(rhs)?;
            let rf = self.coerce_float(rv);
            let (cmp, fs, ft, cond) = match op {
                BinOp::Eq => (FCmp::Eq, lf, rf, Cond::FTrue),
                BinOp::Ne => (FCmp::Eq, lf, rf, Cond::FFalse),
                BinOp::Lt => (FCmp::Lt, lf, rf, Cond::FTrue),
                BinOp::Le => (FCmp::Le, lf, rf, Cond::FTrue),
                BinOp::Gt => (FCmp::Lt, rf, lf, Cond::FTrue),
                BinOp::Ge => (FCmp::Le, rf, lf, Cond::FTrue),
                _ => unreachable!("comparison() called on non-comparison"),
            };
            self.emit(Instr::CmpF { cmp, fs, ft });
            return Ok(cond);
        }

        // Integer comparisons. Zero on one side selects the MIPS
        // sign-test branch forms.
        if is_const_zero(rhs) {
            let lv = self.expr(lhs)?;
            let l = self.expect_word(lv, lhs.span)?;
            return Ok(match op {
                BinOp::Lt => Cond::Ltz(l),
                BinOp::Le => Cond::Lez(l),
                BinOp::Gt => Cond::Gtz(l),
                BinOp::Ge => Cond::Gez(l),
                BinOp::Eq => Cond::Eqz(l),
                BinOp::Ne => Cond::Nez(l),
                _ => unreachable!(),
            });
        }
        if is_const_zero(lhs) {
            let rv = self.expr(rhs)?;
            let r = self.expect_word(rv, rhs.span)?;
            return Ok(match op {
                BinOp::Lt => Cond::Gtz(r), // 0 < r
                BinOp::Le => Cond::Gez(r),
                BinOp::Gt => Cond::Ltz(r),
                BinOp::Ge => Cond::Lez(r),
                BinOp::Eq => Cond::Eqz(r),
                BinOp::Ne => Cond::Nez(r),
                _ => unreachable!(),
            });
        }

        let lv = self.expr(lhs)?;
        let l = self.expect_word(lv, lhs.span)?;
        let rv = self.expr(rhs)?;
        let r = self.expect_word(rv, rhs.span)?;
        match op {
            BinOp::Eq => Ok(Cond::Eq(l, r)),
            BinOp::Ne => Ok(Cond::Ne(l, r)),
            // Relational tests materialise through slt/sle like MIPS.
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                let t = self.b.new_reg();
                let (irop, a, b) = match op {
                    BinOp::Lt => (IrBinOp::Slt, l, r),
                    BinOp::Le => (IrBinOp::Sle, l, r),
                    BinOp::Gt => (IrBinOp::Slt, r, l),
                    BinOp::Ge => (IrBinOp::Sle, r, l),
                    _ => unreachable!(),
                };
                self.emit(Instr::Bin {
                    op: irop,
                    rd: t,
                    rs: a,
                    rt: b,
                });
                Ok(Cond::Nez(t))
            }
            _ => unreachable!(),
        }
    }

    /// Conservative syntactic check: does `e` evaluate to a float?
    fn is_floatish(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::FloatLit(_) => true,
            ExprKind::Var(name) => match self.lookup(name) {
                Some(Local::Float(_)) => true,
                Some(_) => false,
                None => self
                    .globals
                    .get(name)
                    .map(|g| g.ty == Type::Float && !g.array)
                    .unwrap_or(false),
            },
            ExprKind::Unary {
                op: UnOp::Neg,
                expr,
            } => self.is_floatish(expr),
            ExprKind::Unary { op: UnOp::Not, .. } => false,
            ExprKind::Binary { op, lhs, rhs } => {
                !op.is_comparison()
                    && !op.is_logical()
                    && (self.is_floatish(lhs) || self.is_floatish(rhs))
            }
            ExprKind::Call { name, .. } => match name.as_str() {
                "float" => true,
                "int" | "alloc" => false,
                _ => self
                    .sigs
                    .get(name)
                    .map(|s| s.ret == Some(Type::Float))
                    .unwrap_or(false),
            },
            ExprKind::Index { base, .. } => {
                if let ExprKind::Var(name) = &base.kind {
                    if let Some(Local::Array { float, .. }) = self.lookup(name) {
                        return float;
                    }
                    if self.lookup(name).is_none() {
                        if let Some(g) = self.globals.get(name) {
                            return g.array && g.ty == Type::Float;
                        }
                    }
                }
                false
            }
            _ => false,
        }
    }

    // ---- expressions ----

    fn expr(&mut self, e: &Expr) -> Result<Value, CompileError> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                let r = self.b.new_reg();
                self.emit(Instr::Li { rd: r, imm: *v });
                Ok(Value::Word(r))
            }
            ExprKind::FloatLit(v) => {
                let f = self.b.new_freg();
                self.emit(Instr::LiF { fd: f, imm: *v });
                Ok(Value::Float(f))
            }
            ExprKind::Null => {
                let r = self.b.new_reg();
                self.emit(Instr::Li { rd: r, imm: 0 });
                Ok(Value::Word(r))
            }
            ExprKind::Var(name) => {
                if let Some(local) = self.lookup(name) {
                    return match local {
                        Local::Word(r) => Ok(Value::Word(r)),
                        Local::Float(f) => Ok(Value::Float(f)),
                        Local::Array { off, .. } => {
                            // A bare array name denotes its address.
                            let t = self.b.new_reg();
                            self.emit(Instr::BinImm {
                                op: IrBinOp::Add,
                                rd: t,
                                rs: Reg::SP,
                                imm: off,
                            });
                            Ok(Value::Word(t))
                        }
                    };
                }
                if let Some(&g) = self.globals.get(name) {
                    if g.array {
                        let t = self.b.new_reg();
                        self.emit(Instr::BinImm {
                            op: IrBinOp::Add,
                            rd: t,
                            rs: Reg::GP,
                            imm: g.off,
                        });
                        return Ok(Value::Word(t));
                    }
                    return match g.ty {
                        Type::Float => {
                            let f = self.b.new_freg();
                            self.emit(Instr::LoadF {
                                fd: f,
                                base: Reg::GP,
                                offset: g.off,
                            });
                            Ok(Value::Float(f))
                        }
                        _ => {
                            let r = self.b.new_reg();
                            self.emit(Instr::Load {
                                rd: r,
                                base: Reg::GP,
                                offset: g.off,
                            });
                            Ok(Value::Word(r))
                        }
                    };
                }
                Err(CompileError::ty(
                    format!("unknown variable `{name}`"),
                    e.span,
                ))
            }
            ExprKind::Unary {
                op: UnOp::Neg,
                expr,
            } => {
                let v = self.expr(expr)?;
                match v {
                    Value::Word(r) => {
                        let t = self.b.new_reg();
                        self.emit(Instr::Bin {
                            op: IrBinOp::Sub,
                            rd: t,
                            rs: Reg::ZERO,
                            rt: r,
                        });
                        Ok(Value::Word(t))
                    }
                    Value::Float(f) => {
                        let zero = self.b.new_freg();
                        self.emit(Instr::LiF { fd: zero, imm: 0.0 });
                        let t = self.b.new_freg();
                        self.emit(Instr::BinF {
                            op: FBinOp::Sub,
                            fd: t,
                            fs: zero,
                            ft: f,
                        });
                        Ok(Value::Float(t))
                    }
                }
            }
            ExprKind::Unary {
                op: UnOp::Not,
                expr,
            } => {
                let v = self.expr(expr)?;
                match v {
                    Value::Word(r) => {
                        let t = self.b.new_reg();
                        self.emit(Instr::Bin {
                            op: IrBinOp::Seq,
                            rd: t,
                            rs: r,
                            rt: Reg::ZERO,
                        });
                        Ok(Value::Word(t))
                    }
                    Value::Float(_) => self.materialize_cond(e),
                }
            }
            ExprKind::Binary { op, lhs, rhs } if op.is_logical() => self.materialize_cond(e),
            ExprKind::Binary { op, lhs, rhs } if op.is_comparison() => {
                if self.is_floatish(lhs) || self.is_floatish(rhs) {
                    return self.materialize_cond(e);
                }
                // Integer comparisons as values use the set-compare ALU
                // forms directly.
                let lv = self.expr(lhs)?;
                let l = self.expect_word(lv, lhs.span)?;
                let rv = self.expr(rhs)?;
                let r = self.expect_word(rv, rhs.span)?;
                let t = self.b.new_reg();
                let (irop, a, b) = match op {
                    BinOp::Lt => (IrBinOp::Slt, l, r),
                    BinOp::Le => (IrBinOp::Sle, l, r),
                    BinOp::Gt => (IrBinOp::Slt, r, l),
                    BinOp::Ge => (IrBinOp::Sle, r, l),
                    BinOp::Eq => (IrBinOp::Seq, l, r),
                    BinOp::Ne => (IrBinOp::Sne, l, r),
                    _ => unreachable!(),
                };
                self.emit(Instr::Bin {
                    op: irop,
                    rd: t,
                    rs: a,
                    rt: b,
                });
                Ok(Value::Word(t))
            }
            ExprKind::Binary { op, lhs, rhs } => {
                if self.is_floatish(lhs) || self.is_floatish(rhs) {
                    let fop = match op {
                        BinOp::Add => FBinOp::Add,
                        BinOp::Sub => FBinOp::Sub,
                        BinOp::Mul => FBinOp::Mul,
                        BinOp::Div => FBinOp::Div,
                        other => {
                            return Err(CompileError::ty(
                                format!("operator {other:?} is not defined on floats"),
                                e.span,
                            ))
                        }
                    };
                    let lv = self.expr(lhs)?;
                    let lf = self.coerce_float(lv);
                    let rv = self.expr(rhs)?;
                    let rf = self.coerce_float(rv);
                    let t = self.b.new_freg();
                    self.emit(Instr::BinF {
                        op: fop,
                        fd: t,
                        fs: lf,
                        ft: rf,
                    });
                    return Ok(Value::Float(t));
                }
                let irop = match op {
                    BinOp::Add => IrBinOp::Add,
                    BinOp::Sub => IrBinOp::Sub,
                    BinOp::Mul => IrBinOp::Mul,
                    BinOp::Div => IrBinOp::Div,
                    BinOp::Rem => IrBinOp::Rem,
                    BinOp::And => IrBinOp::And,
                    BinOp::Or => IrBinOp::Or,
                    BinOp::Xor => IrBinOp::Xor,
                    BinOp::Shl => IrBinOp::Sll,
                    BinOp::Shr => IrBinOp::Sra,
                    _ => unreachable!(),
                };
                let lv = self.expr(lhs)?;
                let l = self.expect_word(lv, lhs.span)?;
                // Constant right operands use the immediate ALU forms.
                if let ExprKind::IntLit(k) = rhs.kind {
                    let t = self.b.new_reg();
                    self.emit(Instr::BinImm {
                        op: irop,
                        rd: t,
                        rs: l,
                        imm: k,
                    });
                    return Ok(Value::Word(t));
                }
                let rv = self.expr(rhs)?;
                let r = self.expect_word(rv, rhs.span)?;
                let t = self.b.new_reg();
                self.emit(Instr::Bin {
                    op: irop,
                    rd: t,
                    rs: l,
                    rt: r,
                });
                Ok(Value::Word(t))
            }
            ExprKind::Index { base, index } => {
                let (base_reg, offset, is_float) = self.element_access(base, index)?;
                if is_float {
                    let f = self.b.new_freg();
                    self.emit(Instr::LoadF {
                        fd: f,
                        base: base_reg,
                        offset,
                    });
                    Ok(Value::Float(f))
                } else {
                    let r = self.b.new_reg();
                    self.emit(Instr::Load {
                        rd: r,
                        base: base_reg,
                        offset,
                    });
                    Ok(Value::Word(r))
                }
            }
            ExprKind::Call { name, args } => self.call(name, args, e.span),
        }
    }

    /// Materialises a boolean expression (logical operator or float
    /// comparison) as a 0/1 word via control flow.
    fn materialize_cond(&mut self, e: &Expr) -> Result<Value, CompileError> {
        let result = self.b.new_reg();
        let t_blk = self.b.new_block();
        let f_blk = self.b.new_block();
        let join = self.b.new_block();
        self.cond(e, t_blk, f_blk, Polarity::FalseTaken)?;
        self.switch_to(t_blk);
        self.emit(Instr::Li { rd: result, imm: 1 });
        self.terminate(Terminator::Jump(join));
        self.switch_to(f_blk);
        self.emit(Instr::Li { rd: result, imm: 0 });
        self.terminate(Terminator::Jump(join));
        self.switch_to(join);
        Ok(Value::Word(result))
    }

    fn call(&mut self, name: &str, args: &[Expr], span: Span) -> Result<Value, CompileError> {
        // Builtins first.
        match name {
            "alloc" => {
                if args.len() != 1 {
                    return Err(CompileError::ty("alloc takes one argument".into(), span));
                }
                let v = self.expr(&args[0])?;
                let size = self.expect_word(v, args[0].span)?;
                let r = self.b.new_reg();
                self.emit(Instr::Alloc { rd: r, size });
                return Ok(Value::Word(r));
            }
            "int" => {
                if args.len() != 1 {
                    return Err(CompileError::ty("int() takes one argument".into(), span));
                }
                let v = self.expr(&args[0])?;
                return Ok(match v {
                    Value::Word(r) => Value::Word(r),
                    Value::Float(f) => {
                        let r = self.b.new_reg();
                        self.emit(Instr::CvtFI { rd: r, fs: f });
                        Value::Word(r)
                    }
                });
            }
            "float" => {
                if args.len() != 1 {
                    return Err(CompileError::ty("float() takes one argument".into(), span));
                }
                let v = self.expr(&args[0])?;
                let f = self.coerce_float(v);
                return Ok(Value::Float(f));
            }
            _ => {}
        }

        let sig = self
            .sigs
            .get(name)
            .ok_or_else(|| CompileError::ty(format!("unknown function `{name}`"), span))?
            .clone();
        if sig.params.len() != args.len() {
            return Err(CompileError::ty(
                format!(
                    "`{name}` takes {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
                span,
            ));
        }
        let mut word_args = Vec::new();
        let mut float_args = Vec::new();
        for (arg, pty) in args.iter().zip(&sig.params) {
            match pty {
                Type::Float => {
                    let v = self.expr(arg)?;
                    float_args.push(self.coerce_float(v));
                }
                _ => {
                    let v = self.expr(arg)?;
                    word_args.push(self.expect_word(v, arg.span)?);
                }
            }
        }
        let (ret, fret, value) = match sig.ret {
            Some(Type::Float) => {
                let f = self.b.new_freg();
                (None, Some(f), Value::Float(f))
            }
            Some(_) => {
                let r = self.b.new_reg();
                (Some(r), None, Value::Word(r))
            }
            None => {
                // Void call used as a value yields 0; as a statement the
                // zero register result is simply unused.
                let r = self.b.new_reg();
                self.emit(Instr::Li { rd: r, imm: 0 });
                (None, None, Value::Word(r))
            }
        };
        self.emit(Instr::Call {
            callee: sig.id,
            args: word_args,
            fargs: float_args,
            ret,
            fret,
        });
        Ok(value)
    }
}

fn is_const_zero(e: &Expr) -> bool {
    matches!(e.kind, ExprKind::IntLit(0) | ExprKind::Null)
}

fn const_index(e: &Expr) -> Option<i64> {
    match e.kind {
        ExprKind::IntLit(k) => Some(k),
        _ => None,
    }
}
