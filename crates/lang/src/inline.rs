//! Leaf-function inlining.
//!
//! 1990s C compilers at `-O` saw `isdigit`-style helpers as macros or
//! inlined them, so small leaf routines never appeared as calls in the
//! object code the paper analysed. This pass gives Cmm the same
//! behaviour: a function that makes **no calls** and is small (static
//! size at most [`MAX_INLINE_SIZE`]) is spliced into every call site.
//!
//! Splicing a callee with its own blocks, registers, and stack frame into
//! a caller requires:
//!
//! * remapping callee temporaries past the caller's register space
//!   (`ZERO`/`GP` pass through unchanged);
//! * giving the callee's frame a fresh region at the top of the caller's
//!   frame and substituting `SP` with `SP + offset`;
//! * turning each `ret` into moves to the call's result registers plus a
//!   jump to the continuation block holding the instructions that
//!   followed the call.

use bpfree_ir::{BinOp, Block, BlockId, Cond, FReg, Function, Instr, Reg, Terminator};

/// Maximum static size (instructions + terminators) of an inlinable
/// function.
pub(crate) const MAX_INLINE_SIZE: u64 = 24;

/// Inlines small leaf callees into every caller, in place.
pub(crate) fn inline_program(funcs: &mut [Function]) {
    let inlinable: Vec<bool> = funcs.iter().map(is_inlinable).collect();
    for caller_idx in 0..funcs.len() {
        if inlinable[caller_idx] {
            // Leaf functions contain no calls; nothing to do.
            continue;
        }
        let mut work = InlineWork::from_function(&funcs[caller_idx]);
        let mut progress = true;
        while progress {
            progress = false;
            let mut b = 0;
            while b < work.blocks.len() {
                if let Some(call_at) = work.blocks[b]
                    .instrs
                    .iter()
                    .position(|i| is_inlinable_call(i, &inlinable, caller_idx))
                {
                    let Instr::Call { callee, .. } = work.blocks[b].instrs[call_at].clone() else {
                        unreachable!("position matched a call")
                    };
                    work.splice(b, call_at, &funcs[callee.index()]);
                    progress = true;
                }
                b += 1;
            }
        }
        funcs[caller_idx] = work.into_function();
    }
}

/// Drops functions unreachable from the entry point (`main`, or the
/// first function) — a fully inlined static helper is not emitted, like
/// a C compiler dropping inlined `static` functions. Rewrites call-site
/// `FuncId`s for the compacted function list.
pub(crate) fn eliminate_dead(funcs: &mut Vec<Function>) {
    if funcs.is_empty() {
        // A source with no functions; Program::new reports the error.
        return;
    }
    let entry = funcs.iter().position(|f| f.name() == "main").unwrap_or(0);
    let n = funcs.len();
    let mut live = vec![false; n];
    let mut stack = vec![entry];
    live[entry] = true;
    while let Some(f) = stack.pop() {
        for block in funcs[f].blocks() {
            for instr in &block.instrs {
                if let Instr::Call { callee, .. } = instr {
                    if !live[callee.index()] {
                        live[callee.index()] = true;
                        stack.push(callee.index());
                    }
                }
            }
        }
    }
    if live.iter().all(|&l| l) {
        return;
    }
    let mut remap = vec![0u32; n];
    let mut next = 0u32;
    for (i, &is_live) in live.iter().enumerate() {
        if is_live {
            remap[i] = next;
            next += 1;
        }
    }
    let old: Vec<Function> = std::mem::take(funcs);
    for (i, f) in old.into_iter().enumerate() {
        if !live[i] {
            continue;
        }
        let mut blocks = f.blocks_vec();
        for b in &mut blocks {
            for instr in &mut b.instrs {
                if let Instr::Call { callee, .. } = instr {
                    *callee = bpfree_ir::FuncId(remap[callee.index()]);
                }
            }
        }
        funcs.push(f.with_blocks(blocks));
    }
}

fn is_inlinable(f: &Function) -> bool {
    f.static_size() <= MAX_INLINE_SIZE
        && !f
            .blocks()
            .iter()
            .any(|b| b.instrs.iter().any(|i| i.is_call()))
}

fn is_inlinable_call(i: &Instr, inlinable: &[bool], caller_idx: usize) -> bool {
    match i {
        Instr::Call { callee, .. } => callee.index() != caller_idx && inlinable[callee.index()],
        _ => false,
    }
}

struct InlineWork {
    name: String,
    blocks: Vec<Block>,
    params: Vec<Reg>,
    fparams: Vec<FReg>,
    n_regs: u32,
    n_fregs: u32,
    frame_words: i64,
}

impl InlineWork {
    fn from_function(f: &Function) -> InlineWork {
        InlineWork {
            name: f.name().to_string(),
            blocks: f.blocks_vec(),
            params: f.params().to_vec(),
            fparams: f.fparams().to_vec(),
            n_regs: f.n_regs(),
            n_fregs: f.n_fregs(),
            frame_words: f.frame_words(),
        }
    }

    fn into_function(self) -> Function {
        Function::assemble(
            self.name,
            self.blocks,
            self.params,
            self.fparams,
            self.n_regs,
            self.n_fregs,
            self.frame_words,
        )
    }

    /// Replaces the call at `blocks[b].instrs[call_at]` with the body of
    /// `callee`.
    fn splice(&mut self, b: usize, call_at: usize, callee: &Function) {
        let Instr::Call {
            args,
            fargs,
            ret,
            fret,
            ..
        } = self.blocks[b].instrs[call_at].clone()
        else {
            unreachable!("splice called on a non-call")
        };

        // Fresh register space for the callee.
        let reg_base = self.n_regs;
        let freg_base = self.n_fregs;
        self.n_regs += callee.n_regs();
        self.n_fregs += callee.n_fregs();
        // Fresh frame region; `SP` in the callee becomes `sp2`.
        let frame_off = self.frame_words;
        self.frame_words += callee.frame_words();
        let sp2 = Reg(self.n_regs);
        self.n_regs += 1;

        let map_reg = |r: Reg| -> Reg {
            if r == Reg::ZERO || r == Reg::GP {
                r
            } else if r == Reg::SP {
                sp2
            } else {
                Reg(reg_base + r.index())
            }
        };
        let map_freg = |r: FReg| FReg(freg_base + r.index());

        // Split the call block: head keeps the prefix, a new continuation
        // block receives the suffix and the original terminator.
        let tail_instrs: Vec<Instr> = self.blocks[b].instrs.split_off(call_at + 1);
        self.blocks[b].instrs.pop(); // drop the call itself
        let head_term = self.blocks[b].term.clone();
        let cont_id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            instrs: tail_instrs,
            term: head_term,
        });

        // Prologue in the head block: sp2, argument moves.
        self.blocks[b].instrs.push(Instr::BinImm {
            op: BinOp::Add,
            rd: sp2,
            rs: Reg::SP,
            imm: frame_off,
        });
        for (param, arg) in callee.params().iter().zip(&args) {
            self.blocks[b].instrs.push(Instr::Move {
                rd: map_reg(*param),
                rs: *arg,
            });
        }
        for (param, arg) in callee.fparams().iter().zip(&fargs) {
            self.blocks[b].instrs.push(Instr::MoveF {
                fd: map_freg(*param),
                fs: *arg,
            });
        }

        // Copy the callee's blocks with remapped registers and block ids.
        let block_base = self.blocks.len() as u32;
        let map_block = |id: BlockId| BlockId(block_base + id.0);
        for src in callee.blocks() {
            let instrs: Vec<Instr> = src
                .instrs
                .iter()
                .map(|i| remap_instr(i, &map_reg, &map_freg))
                .collect();
            let term = match &src.term {
                Terminator::Jump(t) => Terminator::Jump(map_block(*t)),
                Terminator::Branch {
                    cond,
                    taken,
                    fallthru,
                } => Terminator::Branch {
                    cond: remap_cond(cond, &map_reg),
                    taken: map_block(*taken),
                    fallthru: map_block(*fallthru),
                },
                Terminator::Ret { val, fval } => {
                    // ret -> result moves + jump to the continuation.
                    let mut epilogue = Vec::new();
                    if let (Some(dst), Some(src)) = (ret, *val) {
                        epilogue.push(Instr::Move {
                            rd: dst,
                            rs: map_reg(src),
                        });
                    }
                    if let (Some(dst), Some(src)) = (fret, *fval) {
                        epilogue.push(Instr::MoveF {
                            fd: dst,
                            fs: map_freg(src),
                        });
                    }
                    let mut block = Block {
                        instrs: instrs.clone(),
                        term: Terminator::Jump(cont_id),
                    };
                    block.instrs.extend(epilogue);
                    self.blocks.push(block);
                    continue;
                }
            };
            self.blocks.push(Block { instrs, term });
        }
        // Enter the inlined body.
        self.blocks[b].term = Terminator::Jump(BlockId(block_base));
    }
}

fn remap_instr(
    i: &Instr,
    map_reg: &impl Fn(Reg) -> Reg,
    map_freg: &impl Fn(FReg) -> FReg,
) -> Instr {
    let mut out = i.clone();
    match &mut out {
        Instr::Li { rd, .. } => *rd = map_reg(*rd),
        Instr::Move { rd, rs } => {
            *rd = map_reg(*rd);
            *rs = map_reg(*rs);
        }
        Instr::Bin { rd, rs, rt, .. } => {
            *rd = map_reg(*rd);
            *rs = map_reg(*rs);
            *rt = map_reg(*rt);
        }
        Instr::BinImm { rd, rs, .. } => {
            *rd = map_reg(*rd);
            *rs = map_reg(*rs);
        }
        Instr::LiF { fd, .. } => *fd = map_freg(*fd),
        Instr::MoveF { fd, fs } => {
            *fd = map_freg(*fd);
            *fs = map_freg(*fs);
        }
        Instr::BinF { fd, fs, ft, .. } => {
            *fd = map_freg(*fd);
            *fs = map_freg(*fs);
            *ft = map_freg(*ft);
        }
        Instr::CvtIF { fd, rs } => {
            *fd = map_freg(*fd);
            *rs = map_reg(*rs);
        }
        Instr::CvtFI { rd, fs } => {
            *rd = map_reg(*rd);
            *fs = map_freg(*fs);
        }
        Instr::CmpF { fs, ft, .. } => {
            *fs = map_freg(*fs);
            *ft = map_freg(*ft);
        }
        Instr::Load { rd, base, .. } => {
            *rd = map_reg(*rd);
            *base = map_reg(*base);
        }
        Instr::Store { rs, base, .. } => {
            *rs = map_reg(*rs);
            *base = map_reg(*base);
        }
        Instr::LoadF { fd, base, .. } => {
            *fd = map_freg(*fd);
            *base = map_reg(*base);
        }
        Instr::StoreF { fs, base, .. } => {
            *fs = map_freg(*fs);
            *base = map_reg(*base);
        }
        Instr::Alloc { rd, size } => {
            *rd = map_reg(*rd);
            *size = map_reg(*size);
        }
        Instr::Call { .. } => unreachable!("leaf callees contain no calls"),
    }
    out
}

fn remap_cond(c: &Cond, map_reg: &impl Fn(Reg) -> Reg) -> Cond {
    match *c {
        Cond::Eqz(r) => Cond::Eqz(map_reg(r)),
        Cond::Nez(r) => Cond::Nez(map_reg(r)),
        Cond::Lez(r) => Cond::Lez(map_reg(r)),
        Cond::Ltz(r) => Cond::Ltz(map_reg(r)),
        Cond::Gez(r) => Cond::Gez(map_reg(r)),
        Cond::Gtz(r) => Cond::Gtz(map_reg(r)),
        Cond::Eq(a, b) => Cond::Eq(map_reg(a), map_reg(b)),
        Cond::Ne(a, b) => Cond::Ne(map_reg(a), map_reg(b)),
        Cond::FTrue => Cond::FTrue,
        Cond::FFalse => Cond::FFalse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_ir::{FuncId, FunctionBuilder, Program};

    fn leaf_double() -> Function {
        let mut b = FunctionBuilder::new("double");
        let x = b.add_param();
        let r = b.new_reg();
        let e = b.entry();
        b.push(
            e,
            Instr::Bin {
                op: BinOp::Add,
                rd: r,
                rs: x,
                rt: x,
            },
        );
        b.set_term(
            e,
            Terminator::Ret {
                val: Some(r),
                fval: None,
            },
        );
        b.finish().unwrap()
    }

    fn caller_of(callee_id: FuncId) -> Function {
        let mut b = FunctionBuilder::new("main");
        let e = b.entry();
        let a = b.new_reg();
        let r = b.new_reg();
        b.push(e, Instr::Li { rd: a, imm: 21 });
        b.push(
            e,
            Instr::Call {
                callee: callee_id,
                args: vec![a],
                fargs: vec![],
                ret: Some(r),
                fret: None,
            },
        );
        b.set_term(
            e,
            Terminator::Ret {
                val: Some(r),
                fval: None,
            },
        );
        b.finish().unwrap()
    }

    #[test]
    fn inlines_leaf_call_and_preserves_semantics() {
        let mut funcs = vec![caller_of(FuncId(1)), leaf_double()];
        inline_program(&mut funcs);
        // The caller no longer calls anything.
        assert!(!funcs[0]
            .blocks()
            .iter()
            .any(|b| b.instrs.iter().any(|i| i.is_call())));
        let p = Program::new(funcs, 0).unwrap();
        assert!(p.validate().is_ok());
    }

    #[test]
    fn recursive_functions_are_not_inlined() {
        // A function that calls itself is not a leaf.
        let mut b = FunctionBuilder::new("r");
        let e = b.entry();
        let x = b.add_param();
        b.push(
            e,
            Instr::Call {
                callee: FuncId(0),
                args: vec![x],
                fargs: vec![],
                ret: None,
                fret: None,
            },
        );
        b.set_term(
            e,
            Terminator::Ret {
                val: None,
                fval: None,
            },
        );
        let rec = b.finish().unwrap();
        let mut funcs = vec![rec, caller_of(FuncId(0))];
        inline_program(&mut funcs);
        assert!(funcs[1]
            .blocks()
            .iter()
            .any(|b| b.instrs.iter().any(|i| i.is_call())));
    }

    #[test]
    fn large_functions_are_not_inlined() {
        let mut b = FunctionBuilder::new("big");
        let x = b.add_param();
        let e = b.entry();
        for _ in 0..(MAX_INLINE_SIZE + 4) {
            let r = b.new_reg();
            b.push(
                e,
                Instr::Bin {
                    op: BinOp::Add,
                    rd: r,
                    rs: x,
                    rt: x,
                },
            );
        }
        b.set_term(
            e,
            Terminator::Ret {
                val: Some(x),
                fval: None,
            },
        );
        let big = b.finish().unwrap();
        let mut funcs = vec![caller_of(FuncId(1)), big];
        inline_program(&mut funcs);
        assert!(funcs[0]
            .blocks()
            .iter()
            .any(|b| b.instrs.iter().any(|i| i.is_call())));
    }

    #[test]
    fn frame_space_is_reserved_for_inlined_callee() {
        // A leaf with a local array.
        let mut b = FunctionBuilder::new("leafarr");
        let e = b.entry();
        let off = b.reserve_frame(4);
        let r = b.new_reg();
        b.push(
            e,
            Instr::Load {
                rd: r,
                base: Reg::SP,
                offset: off,
            },
        );
        b.set_term(
            e,
            Terminator::Ret {
                val: Some(r),
                fval: None,
            },
        );
        let leaf = b.finish().unwrap();

        let mut caller = FunctionBuilder::new("main");
        let e = caller.entry();
        let coff = caller.reserve_frame(2);
        let r = caller.new_reg();
        caller.push(
            e,
            Instr::Load {
                rd: r,
                base: Reg::SP,
                offset: coff,
            },
        );
        caller.push(
            e,
            Instr::Call {
                callee: FuncId(1),
                args: vec![],
                fargs: vec![],
                ret: Some(r),
                fret: None,
            },
        );
        caller.set_term(
            e,
            Terminator::Ret {
                val: Some(r),
                fval: None,
            },
        );
        let main = caller.finish().unwrap();

        let mut funcs = vec![main, leaf];
        inline_program(&mut funcs);
        assert_eq!(funcs[0].frame_words(), 6);
        // The callee's SP use must go through an adjusted base register.
        let has_sp_adjust = funcs[0].blocks().iter().any(|b| {
            b.instrs.iter().any(
                |i| matches!(i, Instr::BinImm { op: BinOp::Add, rs, imm: 2, .. } if *rs == Reg::SP),
            )
        });
        assert!(has_sp_adjust);
    }
}
