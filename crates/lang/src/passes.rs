//! Post-lowering cleanup passes that make the generated code look like
//! optimised (`-O`) compiler output — which is what the paper analysed.
//!
//! * **Block straightening**: a block ending in an unconditional jump to
//!   a block with exactly one predecessor is merged with it. This is
//!   load-bearing for the heuristics: it puts a rotated loop's body and
//!   bottom test in one block, so a pointer load and the null test that
//!   reads it share a block, exactly as MIPS codegen laid them out.
//! * **Unreachable block removal**.
//! * **Copy propagation**: `op $t, ...; move $v, $t` with `$t`
//!   single-def/single-use becomes `op $v, ...`, eliminating the move —
//!   so a load feeding a branch is *directly* the branch operand, which
//!   the pointer heuristic pattern-matches on.

use std::collections::HashMap;

use bpfree_ir::{Block, BlockId, FReg, Function, Instr, Reg, Terminator};

/// Runs all cleanup passes on one function.
pub(crate) fn simplify(func: Function) -> Function {
    let mut blocks = func.blocks_vec();
    merge_blocks(&mut blocks);
    let blocks = remove_unreachable(blocks);
    let mut blocks = blocks;
    copy_propagate(&mut blocks);
    func.with_blocks(blocks)
}

fn pred_counts(blocks: &[Block]) -> Vec<usize> {
    let mut preds = vec![0usize; blocks.len()];
    for b in blocks {
        for s in b.term.successors() {
            preds[s.index()] += 1;
        }
    }
    preds
}

/// Merges `A: ...; j B` with `B` when `B` has exactly one predecessor.
/// Dead blocks are left in place (emptied) and cleaned up by
/// [`remove_unreachable`].
fn merge_blocks(blocks: &mut [Block]) {
    let preds = pred_counts(blocks);
    // `preds` stays valid during merging: splicing B into A preserves
    // B's out-edges (now A's) and removes exactly the A->B edge.
    let n = blocks.len();
    for a in 0..n {
        while let Terminator::Jump(b) = blocks[a].term {
            let bi = b.index();
            if bi == a || bi == 0 || preds[bi] != 1 {
                break;
            }
            let spliced = std::mem::replace(
                &mut blocks[bi],
                Block {
                    instrs: Vec::new(),
                    term: Terminator::Jump(b),
                },
            );
            blocks[a].instrs.extend(spliced.instrs);
            blocks[a].term = spliced.term;
            // `blocks[bi]` is now a dead self-loop stub, unreachable
            // because its only predecessor was `a`.
        }
    }
}

/// Drops blocks unreachable from the entry and compacts ids.
fn remove_unreachable(blocks: Vec<Block>) -> Vec<Block> {
    let n = blocks.len();
    let mut reach = vec![false; n];
    let mut stack = vec![0usize];
    reach[0] = true;
    while let Some(b) = stack.pop() {
        for s in blocks[b].term.successors() {
            if !reach[s.index()] {
                reach[s.index()] = true;
                stack.push(s.index());
            }
        }
    }
    let mut remap = vec![BlockId(0); n];
    let mut next = 0u32;
    for i in 0..n {
        if reach[i] {
            remap[i] = BlockId(next);
            next += 1;
        }
    }
    blocks
        .into_iter()
        .enumerate()
        .filter(|(i, _)| reach[*i])
        .map(|(_, mut b)| {
            match &mut b.term {
                Terminator::Jump(t) => *t = remap[t.index()],
                Terminator::Branch {
                    taken, fallthru, ..
                } => {
                    *taken = remap[taken.index()];
                    *fallthru = remap[fallthru.index()];
                }
                Terminator::Ret { .. } => {}
            }
            b
        })
        .collect()
}

/// Whole-function use/def counts for every register.
#[derive(Default)]
struct Counts {
    def: HashMap<Reg, usize>,
    uses: HashMap<Reg, usize>,
    fdef: HashMap<FReg, usize>,
    fuses: HashMap<FReg, usize>,
}

fn count_regs(blocks: &[Block]) -> Counts {
    let mut c = Counts::default();
    for b in blocks {
        for i in &b.instrs {
            if let Some(r) = i.def() {
                *c.def.entry(r).or_default() += 1;
            }
            for r in i.uses() {
                *c.uses.entry(r).or_default() += 1;
            }
            if let Some(r) = i.fdef() {
                *c.fdef.entry(r).or_default() += 1;
            }
            for r in i.fuses() {
                *c.fuses.entry(r).or_default() += 1;
            }
        }
        match &b.term {
            Terminator::Branch { cond, .. } => {
                for r in cond.uses() {
                    *c.uses.entry(r).or_default() += 1;
                }
            }
            Terminator::Ret { val, fval } => {
                if let Some(r) = val {
                    *c.uses.entry(*r).or_default() += 1;
                }
                if let Some(r) = fval {
                    *c.fuses.entry(*r).or_default() += 1;
                }
            }
            Terminator::Jump(_) => {}
        }
    }
    c
}

/// Eliminates `def $t; move $v, $t` pairs where `$t` is defined once and
/// used once (by that move).
fn copy_propagate(blocks: &mut [Block]) {
    let mut counts = count_regs(blocks);
    for b in blocks.iter_mut() {
        let mut i = 0;
        while i + 1 < b.instrs.len() {
            let fused = match (&b.instrs[i], &b.instrs[i + 1]) {
                (prev, Instr::Move { rd, rs }) if rd != rs => {
                    prev.def() == Some(*rs)
                        && !rs.is_special()
                        && counts.def.get(rs) == Some(&1)
                        && counts.uses.get(rs) == Some(&1)
                }
                _ => false,
            };
            if fused {
                let Instr::Move { rd, rs } = b.instrs[i + 1] else {
                    unreachable!()
                };
                if b.instrs[i].set_def(rd) {
                    b.instrs.remove(i + 1);
                    *counts.def.entry(rs).or_default() -= 1;
                    *counts.uses.entry(rs).or_default() -= 1;
                    *counts.def.entry(rd).or_default() += 1;
                    continue;
                }
            }
            // Float pairs.
            let ffused = match (&b.instrs[i], &b.instrs[i + 1]) {
                (prev, Instr::MoveF { fd, fs }) if fd != fs => {
                    prev.fdef() == Some(*fs)
                        && counts.fdef.get(fs) == Some(&1)
                        && counts.fuses.get(fs) == Some(&1)
                }
                _ => false,
            };
            if ffused {
                let Instr::MoveF { fd, fs } = b.instrs[i + 1] else {
                    unreachable!()
                };
                if b.instrs[i].set_fdef(fd) {
                    b.instrs.remove(i + 1);
                    *counts.fdef.entry(fs).or_default() -= 1;
                    *counts.fuses.entry(fs).or_default() -= 1;
                    *counts.fdef.entry(fd).or_default() += 1;
                    continue;
                }
            }
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpfree_ir::{BinOp, Cond, FunctionBuilder};

    fn ret() -> Terminator {
        Terminator::Ret {
            val: None,
            fval: None,
        }
    }

    #[test]
    fn straightens_jump_chains() {
        let mut fb = FunctionBuilder::new("f");
        let e = fb.entry();
        let m = fb.new_block();
        let z = fb.new_block();
        let r = fb.new_reg();
        fb.push(e, Instr::Li { rd: r, imm: 1 });
        fb.set_term(e, Terminator::Jump(m));
        fb.push(
            m,
            Instr::BinImm {
                op: BinOp::Add,
                rd: r,
                rs: r,
                imm: 1,
            },
        );
        fb.set_term(m, Terminator::Jump(z));
        fb.set_term(
            z,
            Terminator::Ret {
                val: Some(r),
                fval: None,
            },
        );
        let f = simplify(fb.finish().unwrap());
        assert_eq!(f.blocks().len(), 1);
        assert_eq!(f.block(BlockId(0)).instrs.len(), 2);
        assert!(f.block(BlockId(0)).term.is_ret());
    }

    #[test]
    fn does_not_merge_blocks_with_two_predecessors() {
        let mut fb = FunctionBuilder::new("f");
        let e = fb.entry();
        let a = fb.new_block();
        let b = fb.new_block();
        let j = fb.new_block();
        let r = fb.new_reg();
        fb.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Nez(r),
                taken: a,
                fallthru: b,
            },
        );
        fb.set_term(a, Terminator::Jump(j));
        fb.set_term(b, Terminator::Jump(j));
        fb.set_term(j, ret());
        let f = simplify(fb.finish().unwrap());
        assert_eq!(f.blocks().len(), 4);
    }

    #[test]
    fn removes_unreachable_blocks_and_remaps() {
        let mut fb = FunctionBuilder::new("f");
        let e = fb.entry();
        let dead = fb.new_block();
        let live = fb.new_block();
        let r = fb.new_reg();
        fb.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Nez(r),
                taken: live,
                fallthru: e,
            },
        );
        fb.set_term(dead, ret());
        fb.set_term(live, ret());
        let f = simplify(fb.finish().unwrap());
        assert_eq!(f.blocks().len(), 2);
        // The branch's taken target must have been remapped to block 1.
        match f.block(BlockId(0)).term {
            Terminator::Branch {
                taken, fallthru, ..
            } => {
                assert_eq!(taken, BlockId(1));
                assert_eq!(fallthru, BlockId(0));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn copy_prop_fuses_load_move() {
        let mut fb = FunctionBuilder::new("f");
        let e = fb.entry();
        let p = fb.add_param();
        let t = fb.new_reg();
        let q = fb.new_reg();
        fb.push(
            e,
            Instr::Load {
                rd: t,
                base: p,
                offset: 1,
            },
        );
        fb.push(e, Instr::Move { rd: q, rs: t });
        fb.set_term(
            e,
            Terminator::Branch {
                cond: Cond::Eqz(q),
                taken: e,
                fallthru: e,
            },
        );
        // (degenerate branch targets don't matter for this pass test)
        fb.set_term(
            e,
            Terminator::Ret {
                val: Some(q),
                fval: None,
            },
        );
        let f = simplify(fb.finish().unwrap());
        let instrs = &f.block(BlockId(0)).instrs;
        assert_eq!(instrs.len(), 1);
        assert_eq!(
            instrs[0],
            Instr::Load {
                rd: q,
                base: p,
                offset: 1
            }
        );
    }

    #[test]
    fn copy_prop_keeps_multi_use_temps() {
        let mut fb = FunctionBuilder::new("f");
        let e = fb.entry();
        let t = fb.new_reg();
        let q = fb.new_reg();
        fb.push(e, Instr::Li { rd: t, imm: 3 });
        fb.push(e, Instr::Move { rd: q, rs: t });
        // Second use of t after the move: fusing would be wrong.
        fb.push(
            e,
            Instr::Bin {
                op: BinOp::Add,
                rd: q,
                rs: q,
                rt: t,
            },
        );
        fb.set_term(
            e,
            Terminator::Ret {
                val: Some(q),
                fval: None,
            },
        );
        let f = simplify(fb.finish().unwrap());
        assert_eq!(f.block(BlockId(0)).instrs.len(), 3);
    }

    #[test]
    fn copy_prop_handles_float_moves() {
        let mut fb = FunctionBuilder::new("f");
        let e = fb.entry();
        let p = fb.add_param();
        let t = fb.new_freg();
        let q = fb.new_freg();
        fb.push(
            e,
            Instr::LoadF {
                fd: t,
                base: p,
                offset: 0,
            },
        );
        fb.push(e, Instr::MoveF { fd: q, fs: t });
        fb.set_term(
            e,
            Terminator::Ret {
                val: None,
                fval: Some(q),
            },
        );
        let f = simplify(fb.finish().unwrap());
        let instrs = &f.block(BlockId(0)).instrs;
        assert_eq!(instrs.len(), 1);
        assert_eq!(
            instrs[0],
            Instr::LoadF {
                fd: q,
                base: p,
                offset: 0
            }
        );
    }

    #[test]
    fn merge_then_copy_prop_compose() {
        // li t; j B; B: move v, t  ==> one block, one li.
        let mut fb = FunctionBuilder::new("f");
        let e = fb.entry();
        let b = fb.new_block();
        let t = fb.new_reg();
        let v = fb.new_reg();
        fb.push(e, Instr::Li { rd: t, imm: 9 });
        fb.set_term(e, Terminator::Jump(b));
        fb.push(b, Instr::Move { rd: v, rs: t });
        fb.set_term(
            b,
            Terminator::Ret {
                val: Some(v),
                fval: None,
            },
        );
        let f = simplify(fb.finish().unwrap());
        assert_eq!(f.blocks().len(), 1);
        assert_eq!(
            f.block(BlockId(0)).instrs,
            vec![Instr::Li { rd: v, imm: 9 }]
        );
    }
}
