use crate::lexer::Span;

/// A Cmm surface type.
///
/// `Int` and `Ptr` are both 64-bit words and convert implicitly (the
/// distinction is documentation plus a hint to readers of benchmark
/// sources); `Float` is a separate 64-bit floating-point type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    Int,
    Float,
    Ptr,
}

impl Type {
    /// Are values of this type stored as integer words?
    pub fn is_word(self) -> bool {
        matches!(self, Type::Int | Type::Ptr)
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Ptr => write!(f, "ptr"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    /// Short-circuit logical and.
    LAnd,
    /// Short-circuit logical or.
    LOr,
}

impl BinOp {
    /// Is this a comparison producing a 0/1 result?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Is this a short-circuit logical operator?
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LAnd | BinOp::LOr)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (0/1 result).
    Not,
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    FloatLit(f64),
    /// The zero pointer literal `null`.
    Null,
    /// A variable reference (local, parameter, or global scalar) or a bare
    /// array name (which denotes its address).
    Var(String),
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Function call, or the builtins `alloc`, `int`, `float`.
    Call {
        name: String,
        args: Vec<Expr>,
    },
    /// `base[index]` — array element or pointer load.
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
}

/// A statement with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
}

/// Statement kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `type name;` or `type name[N];` (local declaration).
    Decl {
        ty: Type,
        name: String,
        size: Option<i64>,
    },
    /// `lvalue = expr;` where lvalue is a variable or an index expression.
    Assign {
        target: Expr,
        value: Expr,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    DoWhile {
        body: Vec<Stmt>,
        cond: Expr,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
    },
    Break,
    Continue,
    Return(Option<Expr>),
    ExprStmt(Expr),
    Block(Vec<Stmt>),
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `global type name;` or `global type name[N];`
    Global {
        ty: Type,
        name: String,
        size: Option<i64>,
        span: Span,
    },
    /// A function definition.
    Function {
        name: String,
        params: Vec<(Type, String)>,
        ret: Option<Type>,
        body: Vec<Stmt>,
        span: Span,
    },
}

/// A parsed Cmm compilation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub items: Vec<Item>,
}

impl Program {
    /// Iterator over function items.
    pub fn functions(&self) -> impl Iterator<Item = &Item> {
        self.items
            .iter()
            .filter(|i| matches!(i, Item::Function { .. }))
    }

    /// Iterator over global items.
    pub fn globals(&self) -> impl Iterator<Item = &Item> {
        self.items
            .iter()
            .filter(|i| matches!(i, Item::Global { .. }))
    }
}
