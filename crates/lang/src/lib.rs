//! # Cmm — the benchmark-suite language
//!
//! The paper analysed optimised MIPS executables of C and Fortran
//! programs. We do not have those binaries, so this crate provides a small
//! C-like language, **Cmm**, and a compiler from Cmm to the
//! [`bpfree_ir`] MIPS-flavoured IR. The 23 programs of the benchmark suite
//! (crate `bpfree-suite`) are written in Cmm.
//!
//! The compiler deliberately mimics the code-generation idioms the paper's
//! heuristics key on:
//!
//! * **Loop rotation** — `while`/`for` loops compile to a guard branch
//!   around a do-until loop, replicating the loop test (the paper notes
//!   "many compilers generate code for while loops and for loops by
//!   generating an if-then around a do-until loop"). The guard is a
//!   *non-loop* branch that chooses between executing and avoiding the
//!   loop; the replicated test at the bottom is a *loop* branch whose
//!   taken edge is the backedge.
//! * **MIPS branch selection** — comparisons against zero become
//!   `blez`/`bltz`/`bgez`/`bgtz`-style conditions, equality tests become
//!   `beq`/`bne`, general relational tests materialise through `slt`, and
//!   floating-point comparisons set a condition flag read by
//!   `bc1t`/`bc1f`. The opcode heuristic reads exactly these forms.
//! * **Branch-over polarity** — `if` statements branch *on the negated
//!   condition over the then-block* (forward taken edge = else side),
//!   while rotated loop latches branch *back on the true condition*
//!   (taken edge = backedge), as MIPS compilers emit.
//! * **SP/GP addressing** — global scalars load directly off `$gp`; local
//!   arrays live in the `$sp`-addressed frame; heap cells come from
//!   `alloc` and are addressed off ordinary registers. The pointer
//!   heuristic distinguishes these.
//!
//! ## Language summary
//!
//! ```text
//! program  := (global | fn)*
//! global   := "global" type IDENT ("[" INT "]")? ";"
//! fn       := "fn" IDENT "(" (type IDENT ("," type IDENT)*)? ")" ("->" type)? block
//! type     := "int" | "float" | "ptr"
//! stmt     := type IDENT ("[" INT "]")? ";"          // declaration
//!           | lvalue "=" expr ";"                    // assignment
//!           | "if" "(" expr ")" block ("else" (block | if))?
//!           | "while" "(" expr ")" block
//!           | "do" block "while" "(" expr ")" ";"
//!           | "for" "(" simple? ";" expr? ";" simple? ")" block
//!           | "break" ";" | "continue" ";"
//!           | "return" expr? ";"
//!           | expr ";"
//!           | block
//! expr     := ternary-free C expression grammar: || && | ^ & == != < <= > >=
//!             << >> + - * / % unary -,! postfix call/index
//! ```
//!
//! `ptr` and `int` are both 64-bit words and convert implicitly (Cmm is
//! memory-untyped like B/BCPL); `int` promotes implicitly to `float`, and
//! `int(e)` / `float(e)` convert explicitly. `null` is the zero pointer.
//! `alloc(n)` returns a fresh zeroed n-word heap block. Indexing applies
//! to global/local arrays (typed loads) and to any word-typed expression
//! (pointer load). Local scalars live in virtual registers; there is no
//! address-of operator.
//!
//! # Example
//!
//! ```
//! let program = bpfree_lang::compile(
//!     r#"
//!     global int xs[8];
//!     fn sum(int n) -> int {
//!         int i; int s;
//!         s = 0;
//!         for (i = 0; i < n; i = i + 1) { s = s + xs[i]; }
//!         return s;
//!     }
//!     fn main() -> int { return sum(8); }
//!     "#,
//! )?;
//! // `sum` is a small leaf, so the default pipeline inlines it into
//! // `main` and drops the dead copy — like a 1993 C compiler at -O.
//! assert!(program.func_by_name("main").is_some());
//! assert!(program.func_by_name("sum").is_none());
//! # Ok::<(), bpfree_lang::CompileError>(())
//! ```

mod ast;
mod error;
mod inline;
mod lexer;
mod lower;
mod parser;
mod passes;

pub use ast::{BinOp, Expr, ExprKind, Item, Program as AstProgram, Stmt, StmtKind, Type, UnOp};
pub use error::CompileError;
pub use lexer::{Lexer, Span, Token, TokenKind};
pub use parser::parse;

use bpfree_ir::Program;

/// Compiler options. The default is full optimisation — what the paper's
/// `-O`-compiled benchmarks looked like. Disable passes to inspect raw
/// lowering output (an `-O0` view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Options {
    /// Inline small leaf functions and drop fully-inlined dead functions.
    pub inline: bool,
    /// Straighten blocks, remove unreachable code, propagate copies.
    pub simplify: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            inline: true,
            simplify: true,
        }
    }
}

impl Options {
    /// No optimisation passes: the raw lowering output.
    pub fn o0() -> Options {
        Options {
            inline: false,
            simplify: false,
        }
    }

    /// CFG cleanup without inlining.
    pub fn no_inline() -> Options {
        Options {
            inline: false,
            simplify: true,
        }
    }

    /// A short stable label naming the enabled passes, for artifact
    /// cache keys and diagnostics: two programs compiled under options
    /// with different fingerprints never share cached artifacts.
    pub fn fingerprint(&self) -> &'static str {
        match (self.inline, self.simplify) {
            (true, true) => "O:inline+simplify",
            (false, true) => "O:simplify",
            (true, false) => "O:inline",
            (false, false) => "O0",
        }
    }
}

/// Compiles Cmm source text to a validated IR [`Program`].
///
/// # Errors
///
/// Returns a [`CompileError`] carrying a source span for lexical, syntax,
/// or type errors, and for IR validation failures (which indicate a
/// compiler bug and are reported as internal errors).
///
/// # Example
///
/// ```
/// let p = bpfree_lang::compile("fn main() -> int { return 7; }")?;
/// assert_eq!(p.funcs().len(), 1);
/// # Ok::<(), bpfree_lang::CompileError>(())
/// ```
pub fn compile(source: &str) -> Result<Program, CompileError> {
    compile_with(source, Options::default())
}

/// Compiles with explicit [`Options`].
///
/// # Errors
///
/// As [`compile`].
///
/// # Example
///
/// ```
/// use bpfree_lang::{compile_with, Options};
/// let src = "fn sq(int x) -> int { return x * x; }
///            fn main() -> int { return sq(9); }";
/// // At -O0 the call to `sq` survives; by default it is inlined away.
/// let raw = compile_with(src, Options::o0())?;
/// assert!(raw.func_by_name("sq").is_some());
/// let opt = compile_with(src, Options::default())?;
/// assert!(opt.func_by_name("sq").is_none());
/// # Ok::<(), bpfree_lang::CompileError>(())
/// ```
pub fn compile_with(source: &str, options: Options) -> Result<Program, CompileError> {
    let ast = parse(source)?;
    lower::lower(&ast, options)
}
