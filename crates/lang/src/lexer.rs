use std::fmt;

use crate::error::CompileError;

/// A byte range in the source text, used for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based (line, column) of the span start within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// The kind of a lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers.
    Int(i64),
    Float(f64),
    Ident(String),
    // Keywords.
    KwGlobal,
    KwFn,
    KwInt,
    KwFloat,
    KwPtr,
    KwIf,
    KwElse,
    KwWhile,
    KwDo,
    KwFor,
    KwBreak,
    KwContinue,
    KwReturn,
    KwNull,
    // Punctuation and operators.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Arrow,
    Assign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    AmpAmp,
    PipePipe,
    Bang,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "integer literal `{v}`"),
            TokenKind::Float(v) => write!(f, "float literal `{v}`"),
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::KwGlobal => write!(f, "`global`"),
            TokenKind::KwFn => write!(f, "`fn`"),
            TokenKind::KwInt => write!(f, "`int`"),
            TokenKind::KwFloat => write!(f, "`float`"),
            TokenKind::KwPtr => write!(f, "`ptr`"),
            TokenKind::KwIf => write!(f, "`if`"),
            TokenKind::KwElse => write!(f, "`else`"),
            TokenKind::KwWhile => write!(f, "`while`"),
            TokenKind::KwDo => write!(f, "`do`"),
            TokenKind::KwFor => write!(f, "`for`"),
            TokenKind::KwBreak => write!(f, "`break`"),
            TokenKind::KwContinue => write!(f, "`continue`"),
            TokenKind::KwReturn => write!(f, "`return`"),
            TokenKind::KwNull => write!(f, "`null`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Arrow => write!(f, "`->`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::Shl => write!(f, "`<<`"),
            TokenKind::Shr => write!(f, "`>>`"),
            TokenKind::AmpAmp => write!(f, "`&&`"),
            TokenKind::PipePipe => write!(f, "`||`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// Converts Cmm source text into tokens.
///
/// Supports `//` line comments and `/* */` block comments, decimal and
/// hexadecimal (`0x`) integers, and floats with optional exponents.
///
/// # Example
///
/// ```
/// use bpfree_lang::{Lexer, TokenKind};
/// let tokens = Lexer::new("x = 0x10; // comment").tokenize().unwrap();
/// assert_eq!(tokens[2].kind, TokenKind::Int(16));
/// ```
#[derive(Debug)]
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenizes the whole input, ending with an [`TokenKind::Eof`] token.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] on an unknown character, an unterminated
    /// block comment, or a malformed numeric literal.
    pub fn tokenize(mut self) -> Result<Vec<Token>, CompileError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.pos;
            let Some(&c) = self.bytes.get(self.pos) else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start, start),
                });
                return Ok(out);
            };
            let kind = match c {
                b'0'..=b'9' => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident_or_keyword(),
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'{' => self.single(TokenKind::LBrace),
                b'}' => self.single(TokenKind::RBrace),
                b'[' => self.single(TokenKind::LBracket),
                b']' => self.single(TokenKind::RBracket),
                b',' => self.single(TokenKind::Comma),
                b';' => self.single(TokenKind::Semi),
                b'+' => self.single(TokenKind::Plus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.single(TokenKind::Slash),
                b'%' => self.single(TokenKind::Percent),
                b'^' => self.single(TokenKind::Caret),
                b'-' => {
                    if self.peek2() == Some(b'>') {
                        self.pos += 2;
                        TokenKind::Arrow
                    } else {
                        self.single(TokenKind::Minus)
                    }
                }
                b'&' => {
                    if self.peek2() == Some(b'&') {
                        self.pos += 2;
                        TokenKind::AmpAmp
                    } else {
                        self.single(TokenKind::Amp)
                    }
                }
                b'|' => {
                    if self.peek2() == Some(b'|') {
                        self.pos += 2;
                        TokenKind::PipePipe
                    } else {
                        self.single(TokenKind::Pipe)
                    }
                }
                b'=' => {
                    if self.peek2() == Some(b'=') {
                        self.pos += 2;
                        TokenKind::EqEq
                    } else {
                        self.single(TokenKind::Assign)
                    }
                }
                b'!' => {
                    if self.peek2() == Some(b'=') {
                        self.pos += 2;
                        TokenKind::NotEq
                    } else {
                        self.single(TokenKind::Bang)
                    }
                }
                b'<' => match self.peek2() {
                    Some(b'=') => {
                        self.pos += 2;
                        TokenKind::Le
                    }
                    Some(b'<') => {
                        self.pos += 2;
                        TokenKind::Shl
                    }
                    _ => self.single(TokenKind::Lt),
                },
                b'>' => match self.peek2() {
                    Some(b'=') => {
                        self.pos += 2;
                        TokenKind::Ge
                    }
                    Some(b'>') => {
                        self.pos += 2;
                        TokenKind::Shr
                    }
                    _ => self.single(TokenKind::Gt),
                },
                other => {
                    return Err(CompileError::lex(
                        format!("unknown character `{}`", other as char),
                        Span::new(start, start + 1),
                    ))
                }
            };
            out.push(Token {
                kind,
                span: Span::new(start, self.pos),
            });
        }
    }

    fn single(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.bytes.get(self.pos) {
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(&c) = self.bytes.get(self.pos) {
                        self.pos += 1;
                        if c == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        match self.bytes.get(self.pos) {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                return Err(CompileError::lex(
                                    "unterminated block comment".into(),
                                    Span::new(start, self.pos),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self) -> Result<TokenKind, CompileError> {
        let start = self.pos;
        if self.bytes[self.pos] == b'0' && self.peek2() == Some(b'x') {
            self.pos += 2;
            let digits_start = self.pos;
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            let text = &self.src[digits_start..self.pos];
            let value = i64::from_str_radix(text, 16).map_err(|e| {
                CompileError::lex(
                    format!("bad hexadecimal literal: {e}"),
                    Span::new(start, self.pos),
                )
            })?;
            return Ok(TokenKind::Int(value));
        }
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'.')
            && matches!(self.bytes.get(self.pos + 1), Some(c) if c.is_ascii_digit())
        {
            is_float = true;
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e') | Some(b'E')) {
            let mut ahead = self.pos + 1;
            if matches!(self.bytes.get(ahead), Some(b'+') | Some(b'-')) {
                ahead += 1;
            }
            if matches!(self.bytes.get(ahead), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                self.pos = ahead;
                while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.src[start..self.pos];
        if is_float {
            let value: f64 = text.parse().map_err(|e| {
                CompileError::lex(
                    format!("bad float literal: {e}"),
                    Span::new(start, self.pos),
                )
            })?;
            Ok(TokenKind::Float(value))
        } else {
            let value: i64 = text.parse().map_err(|e| {
                CompileError::lex(
                    format!("bad integer literal: {e}"),
                    Span::new(start, self.pos),
                )
            })?;
            Ok(TokenKind::Int(value))
        }
    }

    fn ident_or_keyword(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(c) if c.is_ascii_alphanumeric() || *c == b'_')
        {
            self.pos += 1;
        }
        match &self.src[start..self.pos] {
            "global" => TokenKind::KwGlobal,
            "fn" => TokenKind::KwFn,
            "int" => TokenKind::KwInt,
            "float" => TokenKind::KwFloat,
            "ptr" => TokenKind::KwPtr,
            "if" => TokenKind::KwIf,
            "else" => TokenKind::KwElse,
            "while" => TokenKind::KwWhile,
            "do" => TokenKind::KwDo,
            "for" => TokenKind::KwFor,
            "break" => TokenKind::KwBreak,
            "continue" => TokenKind::KwContinue,
            "return" => TokenKind::KwReturn,
            "null" => TokenKind::KwNull,
            other => TokenKind::Ident(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        assert_eq!(
            kinds("fn foo if ifx"),
            vec![
                TokenKind::KwFn,
                TokenKind::Ident("foo".into()),
                TokenKind::KwIf,
                TokenKind::Ident("ifx".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(
            kinds("42 0x1f 3.5 1e9 2.5e-3"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(31),
                TokenKind::Float(3.5),
                TokenKind::Float(1e9),
                TokenKind::Float(2.5e-3),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn integer_then_dot_is_not_float_without_digit() {
        // `1.x` would be a syntax error later, but the lexer must not eat
        // the dot — there is no dot token, so it errors.
        assert!(Lexer::new("1.x").tokenize().is_err());
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("== != <= >= << >> && || ->"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AmpAmp,
                TokenKind::PipePipe,
                TokenKind::Arrow,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("a // line\n b /* block\n multi */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(Lexer::new("/* oops").tokenize().is_err());
    }

    #[test]
    fn unknown_character_errors_with_span() {
        let err = Lexer::new("a @ b").tokenize().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains('@'), "{msg}");
    }

    #[test]
    fn spans_cover_token_text() {
        let toks = Lexer::new("ab + cd").tokenize().unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }

    #[test]
    fn line_col_computation() {
        let src = "ab\ncd ef";
        let toks = Lexer::new(src).tokenize().unwrap();
        assert_eq!(toks[0].span.line_col(src), (1, 1));
        assert_eq!(toks[1].span.line_col(src), (2, 1));
        assert_eq!(toks[2].span.line_col(src), (2, 4));
    }
}
