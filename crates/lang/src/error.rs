use std::fmt;

use crate::lexer::Span;

/// Which compilation phase produced an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Lex,
    Parse,
    Type,
    Internal,
}

/// An error produced while compiling Cmm source.
///
/// Carries a [`Span`] so callers can point at the offending source text;
/// [`CompileError::render`] formats a `line:col` diagnostic.
#[derive(Debug, Clone)]
pub struct CompileError {
    phase: Phase,
    message: String,
    span: Span,
}

impl CompileError {
    pub(crate) fn lex(message: String, span: Span) -> CompileError {
        CompileError {
            phase: Phase::Lex,
            message,
            span,
        }
    }

    pub(crate) fn parse(message: String, span: Span) -> CompileError {
        CompileError {
            phase: Phase::Parse,
            message,
            span,
        }
    }

    pub(crate) fn ty(message: String, span: Span) -> CompileError {
        CompileError {
            phase: Phase::Type,
            message,
            span,
        }
    }

    pub(crate) fn internal(message: String) -> CompileError {
        CompileError {
            phase: Phase::Internal,
            message,
            span: Span::default(),
        }
    }

    /// The source span the error points at.
    pub fn span(&self) -> Span {
        self.span
    }

    /// The bare error message, without location information.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Formats a `line:col: phase error: message` diagnostic against the
    /// original source text.
    ///
    /// # Example
    ///
    /// ```
    /// let src = "fn main() -> int { return x; }";
    /// let err = bpfree_lang::compile(src).unwrap_err();
    /// assert!(err.render(src).contains("1:"));
    /// ```
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        format!("{line}:{col}: {self}")
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lexical error",
            Phase::Parse => "syntax error",
            Phase::Type => "type error",
            Phase::Internal => "internal compiler error",
        };
        write!(f, "{phase}: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_phase_and_message() {
        let e = CompileError::ty("mismatched types".into(), Span::new(4, 8));
        assert_eq!(e.to_string(), "type error: mismatched types");
        assert_eq!(e.span(), Span::new(4, 8));
        assert_eq!(e.message(), "mismatched types");
    }

    #[test]
    fn render_points_at_line_and_column() {
        let src = "line one\nline two";
        let e = CompileError::parse("oops".into(), Span::new(9, 13));
        assert_eq!(e.render(src), "2:1: syntax error: oops");
    }
}
