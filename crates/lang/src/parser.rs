use crate::ast::{BinOp, Expr, ExprKind, Item, Program, Stmt, StmtKind, Type, UnOp};
use crate::error::CompileError;
use crate::lexer::{Lexer, Span, Token, TokenKind};

/// Parses Cmm source into an AST.
///
/// # Errors
///
/// Returns the first lexical or syntax error with its source span.
///
/// # Example
///
/// ```
/// let ast = bpfree_lang::parse("fn main() -> int { return 1 + 2 * 3; }").unwrap();
/// assert_eq!(ast.items.len(), 1);
/// ```
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let tokens = Lexer::new(source).tokenize()?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, CompileError> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(CompileError::parse(
                format!("expected {kind}, found {}", self.peek()),
                self.peek_span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), CompileError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                let span = self.peek_span();
                self.bump();
                Ok((name, span))
            }
            other => Err(CompileError::parse(
                format!("expected identifier, found {other}"),
                self.peek_span(),
            )),
        }
    }

    fn parse_type(&mut self) -> Result<Type, CompileError> {
        match self.peek() {
            TokenKind::KwInt => {
                self.bump();
                Ok(Type::Int)
            }
            TokenKind::KwFloat => {
                self.bump();
                Ok(Type::Float)
            }
            TokenKind::KwPtr => {
                self.bump();
                Ok(Type::Ptr)
            }
            other => Err(CompileError::parse(
                format!("expected type, found {other}"),
                self.peek_span(),
            )),
        }
    }

    fn is_type_token(kind: &TokenKind) -> bool {
        matches!(
            kind,
            TokenKind::KwInt | TokenKind::KwFloat | TokenKind::KwPtr
        )
    }

    fn program(mut self) -> Result<Program, CompileError> {
        let mut items = Vec::new();
        while self.peek() != &TokenKind::Eof {
            match self.peek() {
                TokenKind::KwGlobal => items.push(self.global()?),
                TokenKind::KwFn => items.push(self.function()?),
                other => {
                    return Err(CompileError::parse(
                        format!("expected `global` or `fn`, found {other}"),
                        self.peek_span(),
                    ))
                }
            }
        }
        Ok(Program { items })
    }

    fn global(&mut self) -> Result<Item, CompileError> {
        let start = self.peek_span();
        self.expect(TokenKind::KwGlobal)?;
        let ty = self.parse_type()?;
        let (name, _) = self.expect_ident()?;
        let size = self.array_suffix()?;
        let end = self.peek_span();
        self.expect(TokenKind::Semi)?;
        Ok(Item::Global {
            ty,
            name,
            size,
            span: start.merge(end),
        })
    }

    fn array_suffix(&mut self) -> Result<Option<i64>, CompileError> {
        if !self.eat(&TokenKind::LBracket) {
            return Ok(None);
        }
        let tok = self.bump();
        let n = match tok.kind {
            TokenKind::Int(n) if n > 0 => n,
            TokenKind::Int(n) => {
                return Err(CompileError::parse(
                    format!("array size must be positive, got {n}"),
                    tok.span,
                ))
            }
            other => {
                return Err(CompileError::parse(
                    format!("expected array size literal, found {other}"),
                    tok.span,
                ))
            }
        };
        self.expect(TokenKind::RBracket)?;
        Ok(Some(n))
    }

    fn function(&mut self) -> Result<Item, CompileError> {
        let start = self.peek_span();
        self.expect(TokenKind::KwFn)?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &TokenKind::RParen {
            loop {
                let ty = self.parse_type()?;
                let (pname, _) = self.expect_ident()?;
                params.push((ty, pname));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let ret = if self.eat(&TokenKind::Arrow) {
            Some(self.parse_type()?)
        } else {
            None
        };
        let body = self.block()?;
        let span = start.merge(self.tokens[self.pos.saturating_sub(1)].span);
        Ok(Item::Function {
            name,
            params,
            ret,
            body,
            span,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek() != &TokenKind::RBrace {
            if self.peek() == &TokenKind::Eof {
                return Err(CompileError::parse(
                    "unclosed block".into(),
                    self.peek_span(),
                ));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let start = self.peek_span();
        match self.peek().clone() {
            t if Self::is_type_token(&t) => {
                // Declaration — but `int(` / `float(` starts a cast
                // expression, so peek past the type for an identifier.
                if matches!(self.peek2(), TokenKind::Ident(_)) {
                    let ty = self.parse_type()?;
                    let (name, _) = self.expect_ident()?;
                    let size = self.array_suffix()?;
                    let end = self.peek_span();
                    self.expect(TokenKind::Semi)?;
                    Ok(Stmt {
                        kind: StmtKind::Decl { ty, name, size },
                        span: start.merge(end),
                    })
                } else {
                    let s = self.simple_stmt()?;
                    self.expect(TokenKind::Semi)?;
                    Ok(s)
                }
            }
            TokenKind::KwIf => self.if_stmt(),
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                let span = start.merge(self.prev_span());
                Ok(Stmt {
                    kind: StmtKind::While { cond, body },
                    span,
                })
            }
            TokenKind::KwDo => {
                self.bump();
                let body = self.block()?;
                self.expect(TokenKind::KwWhile)?;
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let end = self.peek_span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::DoWhile { body, cond },
                    span: start.merge(end),
                })
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let init = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(TokenKind::Semi)?;
                let cond = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                let step = if self.peek() == &TokenKind::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(TokenKind::RParen)?;
                let body = self.block()?;
                let span = start.merge(self.prev_span());
                Ok(Stmt {
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                    span,
                })
            }
            TokenKind::KwBreak => {
                self.bump();
                let end = self.peek_span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Break,
                    span: start.merge(end),
                })
            }
            TokenKind::KwContinue => {
                self.bump();
                let end = self.peek_span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Continue,
                    span: start.merge(end),
                })
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                let end = self.peek_span();
                self.expect(TokenKind::Semi)?;
                Ok(Stmt {
                    kind: StmtKind::Return(value),
                    span: start.merge(end),
                })
            }
            TokenKind::LBrace => {
                let body = self.block()?;
                let span = start.merge(self.prev_span());
                Ok(Stmt {
                    kind: StmtKind::Block(body),
                    span,
                })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(TokenKind::Semi)?;
                Ok(s)
            }
        }
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    /// Assignment or expression statement (no trailing semicolon) — used
    /// directly by `for` headers.
    fn simple_stmt(&mut self) -> Result<Stmt, CompileError> {
        let start = self.peek_span();
        let e = self.expr()?;
        if self.eat(&TokenKind::Assign) {
            match &e.kind {
                ExprKind::Var(_) | ExprKind::Index { .. } => {}
                _ => {
                    return Err(CompileError::parse(
                        "assignment target must be a variable or index expression".into(),
                        e.span,
                    ))
                }
            }
            let value = self.expr()?;
            let span = start.merge(value.span);
            Ok(Stmt {
                kind: StmtKind::Assign { target: e, value },
                span,
            })
        } else {
            let span = e.span;
            Ok(Stmt {
                kind: StmtKind::ExprStmt(e),
                span,
            })
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let start = self.peek_span();
        self.expect(TokenKind::KwIf)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.eat(&TokenKind::KwElse) {
            if self.peek() == &TokenKind::KwIf {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        let span = start.merge(self.prev_span());
        Ok(Stmt {
            kind: StmtKind::If {
                cond,
                then_body,
                else_body,
            },
            span,
        })
    }

    // ---- expressions: precedence climbing ----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.binary_expr(0)
    }

    fn binop_at(&self, min_prec: u8) -> Option<(BinOp, u8)> {
        let (op, prec) = match self.peek() {
            TokenKind::PipePipe => (BinOp::LOr, 1),
            TokenKind::AmpAmp => (BinOp::LAnd, 2),
            TokenKind::Pipe => (BinOp::Or, 3),
            TokenKind::Caret => (BinOp::Xor, 4),
            TokenKind::Amp => (BinOp::And, 5),
            TokenKind::EqEq => (BinOp::Eq, 6),
            TokenKind::NotEq => (BinOp::Ne, 6),
            TokenKind::Lt => (BinOp::Lt, 7),
            TokenKind::Le => (BinOp::Le, 7),
            TokenKind::Gt => (BinOp::Gt, 7),
            TokenKind::Ge => (BinOp::Ge, 7),
            TokenKind::Shl => (BinOp::Shl, 8),
            TokenKind::Shr => (BinOp::Shr, 8),
            TokenKind::Plus => (BinOp::Add, 9),
            TokenKind::Minus => (BinOp::Sub, 9),
            TokenKind::Star => (BinOp::Mul, 10),
            TokenKind::Slash => (BinOp::Div, 10),
            TokenKind::Percent => (BinOp::Rem, 10),
            _ => return None,
        };
        (prec >= min_prec).then_some((op, prec))
    }

    fn binary_expr(&mut self, min_prec: u8) -> Result<Expr, CompileError> {
        let mut lhs = self.unary_expr()?;
        while let Some((op, prec)) = self.binop_at(min_prec) {
            self.bump();
            // All binary operators are left-associative.
            let rhs = self.binary_expr(prec + 1)?;
            let span = lhs.span.merge(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, CompileError> {
        let start = self.peek_span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let inner = self.unary_expr()?;
                let span = start.merge(inner.span);
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnOp::Neg,
                        expr: Box::new(inner),
                    },
                    span,
                })
            }
            TokenKind::Bang => {
                self.bump();
                let inner = self.unary_expr()?;
                let span = start.merge(inner.span);
                Ok(Expr {
                    kind: ExprKind::Unary {
                        op: UnOp::Not,
                        expr: Box::new(inner),
                    },
                    span,
                })
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary_expr()?;
        loop {
            if self.eat(&TokenKind::LBracket) {
                let index = self.expr()?;
                let end = self.peek_span();
                self.expect(TokenKind::RBracket)?;
                let span = e.span.merge(end);
                e = Expr {
                    kind: ExprKind::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                    },
                    span,
                };
            } else {
                return Ok(e);
            }
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, CompileError> {
        let start = self.peek_span();
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::IntLit(v),
                    span: start,
                })
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::FloatLit(v),
                    span: start,
                })
            }
            TokenKind::KwNull => {
                self.bump();
                Ok(Expr {
                    kind: ExprKind::Null,
                    span: start,
                })
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            // `int(e)` / `float(e)` casts parse as calls to the builtin
            // names `int` / `float`.
            TokenKind::KwInt | TokenKind::KwFloat => {
                let name = if self.peek() == &TokenKind::KwInt {
                    "int"
                } else {
                    "float"
                }
                .to_string();
                self.bump();
                self.expect(TokenKind::LParen)?;
                let arg = self.expr()?;
                let end = self.peek_span();
                self.expect(TokenKind::RParen)?;
                Ok(Expr {
                    kind: ExprKind::Call {
                        name,
                        args: vec![arg],
                    },
                    span: start.merge(end),
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if self.peek() != &TokenKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.peek_span();
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr {
                        kind: ExprKind::Call { name, args },
                        span: start.merge(end),
                    })
                } else {
                    Ok(Expr {
                        kind: ExprKind::Var(name),
                        span: start,
                    })
                }
            }
            other => Err(CompileError::parse(
                format!("expected expression, found {other}"),
                self.peek_span(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Program {
        parse(src).unwrap()
    }

    fn first_fn_body(p: &Program) -> &Vec<Stmt> {
        match &p.items[0] {
            Item::Function { body, .. } => body,
            _ => panic!("expected function"),
        }
    }

    #[test]
    fn parses_globals() {
        let p = parse_ok("global int n; global float xs[10]; global ptr head;");
        assert_eq!(p.items.len(), 3);
        match &p.items[1] {
            Item::Global { ty, name, size, .. } => {
                assert_eq!(*ty, Type::Float);
                assert_eq!(name, "xs");
                assert_eq!(*size, Some(10));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn rejects_zero_sized_array() {
        assert!(parse("global int xs[0];").is_err());
    }

    #[test]
    fn parses_function_signature() {
        let p = parse_ok("fn f(int a, float b, ptr c) -> float { return b; }");
        match &p.items[0] {
            Item::Function {
                name, params, ret, ..
            } => {
                assert_eq!(name, "f");
                assert_eq!(params.len(), 3);
                assert_eq!(params[1], (Type::Float, "b".into()));
                assert_eq!(*ret, Some(Type::Float));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let p = parse_ok("fn f() -> int { return 1 + 2 * 3; }");
        let body = first_fn_body(&p);
        match &body[0].kind {
            StmtKind::Return(Some(e)) => match &e.kind {
                ExprKind::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("wrong tree: {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn comparison_binds_tighter_than_logical() {
        let p = parse_ok("fn f(int a, int b) -> int { return a < 1 && b > 2 || a == b; }");
        let body = first_fn_body(&p);
        match &body[0].kind {
            StmtKind::Return(Some(e)) => {
                assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::LOr, .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn subtraction_is_left_associative() {
        let p = parse_ok("fn f() -> int { return 10 - 3 - 2; }");
        let body = first_fn_body(&p);
        match &body[0].kind {
            StmtKind::Return(Some(e)) => match &e.kind {
                ExprKind::Binary {
                    op: BinOp::Sub,
                    lhs,
                    rhs,
                } => {
                    assert!(matches!(lhs.kind, ExprKind::Binary { op: BinOp::Sub, .. }));
                    assert!(matches!(rhs.kind, ExprKind::IntLit(2)));
                }
                other => panic!("wrong tree: {other:?}"),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn parses_control_flow() {
        let p = parse_ok(
            "fn f(int n) -> int {
                int i; int s;
                s = 0;
                for (i = 0; i < n; i = i + 1) {
                    if (i % 2 == 0) { s = s + i; } else { continue; }
                    while (s > 100) { s = s - 100; }
                    do { s = s + 1; } while (s < 0);
                    if (s == 77) { break; }
                }
                return s;
            }",
        );
        assert_eq!(first_fn_body(&p).len(), 5);
    }

    #[test]
    fn parses_else_if_chain() {
        let p = parse_ok(
            "fn f(int x) -> int {
                if (x < 0) { return -1; } else if (x == 0) { return 0; } else { return 1; }
            }",
        );
        match &first_fn_body(&p)[0].kind {
            StmtKind::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0].kind, StmtKind::If { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_index_chains_and_calls() {
        let p = parse_ok("fn f(ptr p) -> int { return p[0][1] + g(p[2], 3); }");
        match &first_fn_body(&p)[0].kind {
            StmtKind::Return(Some(e)) => {
                assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Add, .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_casts() {
        let p = parse_ok("fn f(float x) -> int { return int(x) + int(float(3)); }");
        assert_eq!(first_fn_body(&p).len(), 1);
    }

    #[test]
    fn assignment_to_rvalue_rejected() {
        assert!(parse("fn f() { 1 + 2 = 3; }").is_err());
    }

    #[test]
    fn assignment_to_index_accepted() {
        let p = parse_ok("fn f(ptr p) { p[0] = 5; }");
        match &first_fn_body(&p)[0].kind {
            StmtKind::Assign { target, .. } => {
                assert!(matches!(target.kind, ExprKind::Index { .. }));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = parse("fn f() { return 1 }").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn error_on_unclosed_block() {
        assert!(parse("fn f() { return 1;").is_err());
    }

    #[test]
    fn empty_for_header_parts() {
        let p = parse_ok("fn f() { int i; for (;;) { break; } }");
        match &first_fn_body(&p)[1].kind {
            StmtKind::For {
                init, cond, step, ..
            } => {
                assert!(init.is_none() && cond.is_none() && step.is_none());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn unary_operators_nest() {
        let p = parse_ok("fn f(int x) -> int { return -!x + --x; }");
        assert_eq!(first_fn_body(&p).len(), 1);
    }

    #[test]
    fn null_literal_parses() {
        let p = parse_ok("fn f(ptr p) -> int { return p == null; }");
        assert_eq!(first_fn_body(&p).len(), 1);
    }
}
