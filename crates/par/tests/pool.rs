//! Executor-level guarantees of the shared pool: panic propagation out
//! of `scope()` without deadlock, element-identical pooled map/fold at
//! random job counts and nesting depths, and a nested-scope stress test
//! shaped like the real workload (a prefetch-style plan inside a
//! replay-style fold inside an experiment-style map).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use bpfree_par::{par_fold_chunks, par_map_jobs, split_ranges, Plan, Pool};
use proptest::prelude::*;

#[test]
fn panic_in_task_propagates_without_deadlocking_scope() {
    let pool = Pool::new(2);
    for round in 0..16 {
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let ran = &ran;
                for i in 0..8 {
                    s.spawn(move |_| {
                        if i == round % 8 {
                            panic!("boom {i}");
                        }
                        ran.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(
            result.is_err(),
            "round {round}: panic must reach the caller"
        );
        // The scope drained before unwinding: all seven non-panicking
        // siblings ran to completion.
        assert_eq!(ran.load(Ordering::Relaxed), 7, "round {round}");
    }
    // The pool survives repeated panics and still runs work.
    let ok = AtomicUsize::new(0);
    pool.scope(|s| {
        let ok = &ok;
        s.spawn(move |_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert_eq!(ok.load(Ordering::Relaxed), 1);
}

#[test]
fn panic_inside_nested_scope_unwinds_through_both_scopes() {
    let pool = Pool::new(2);
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(|outer| {
            let pool = &pool;
            outer.spawn(move |_| {
                pool.scope(|inner| {
                    inner.spawn(|_| panic!("inner boom"));
                });
            });
        });
    }));
    assert!(result.is_err(), "inner panic re-raised through outer scope");
}

/// The serial reference for the pooled fold in the proptest below.
fn serial_weighted_sum(total: u64, chunk_jobs: usize) -> u128 {
    split_ranges(total, chunk_jobs)
        .into_iter()
        .map(|r| r.map(|i| u128::from(i) * 3 + 1).sum::<u128>())
        .reduce(|a, b| a ^ b.rotate_left(7))
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pooled `par_map` is element-identical to the serial map at any
    /// requested job count, including counts far beyond the machine.
    #[test]
    fn par_map_equals_serial(len in 0usize..200, jobs in 1usize..40) {
        let items: Vec<u64> = (0..len as u64).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 17 + 3).collect();
        let got = par_map_jobs(jobs, &items, |x| x * 17 + 3);
        prop_assert_eq!(got, expect);
    }

    /// Pooled `par_fold_chunks` arithmetic is a pure function of the
    /// requested split: a non-commutative merge (XOR of rotated chunk
    /// sums) still matches the serial in-order reduction.
    #[test]
    fn par_fold_equals_serial_in_order_reduction(total in 1u64..5_000, jobs in 1usize..24) {
        bpfree_par::set_jobs(jobs);
        let got = par_fold_chunks(
            total,
            || 0u128,
            |range, acc| acc + range.map(|i| u128::from(i) * 3 + 1).sum::<u128>(),
            |a, b| a ^ b.rotate_left(7),
        );
        bpfree_par::set_jobs(0);
        prop_assert_eq!(got, Some(serial_weighted_sum(total, jobs)));
    }

    /// Nested pooled maps (a map inside every element of a map) stay
    /// element-identical to the doubly-serial loop at random widths and
    /// job counts — the oversubscription case the shared pool exists
    /// to absorb.
    #[test]
    fn nested_par_map_equals_serial(
        outer in 1usize..12,
        inner in 1usize..12,
        outer_jobs in 1usize..9,
        inner_jobs in 1usize..9,
    ) {
        let rows: Vec<u64> = (0..outer as u64).collect();
        let expect: Vec<Vec<u64>> = rows
            .iter()
            .map(|r| (0..inner as u64).map(|c| r * 1000 + c * c).collect())
            .collect();
        let got = par_map_jobs(outer_jobs, &rows, |r| {
            let cols: Vec<u64> = (0..inner as u64).collect();
            par_map_jobs(inner_jobs, &cols, |c| r * 1000 + c * c)
        });
        prop_assert_eq!(got, expect);
    }
}

/// Three layers of nesting shaped like the real batch: an
/// experiment-style `par_map` whose elements run a replay-style
/// `par_fold_chunks`, whose chunks each execute a prefetch-style
/// [`Plan`] — all on the one global pool. The assertion is exact
/// arithmetic equality with the serial computation.
#[test]
fn three_layer_nesting_stress() {
    let experiments: Vec<u64> = (0..6).collect();
    let expected: Vec<u64> = experiments
        .iter()
        .map(|e| {
            (0..400u64)
                .map(|i| {
                    let c = AtomicUsize::new(0);
                    c.fetch_add((e * 400 + i) as usize % 97, Ordering::Relaxed);
                    c.load(Ordering::Relaxed) as u64
                })
                .sum::<u64>()
        })
        .collect();
    let got = par_map_jobs(4, &experiments, |e| {
        par_fold_chunks(
            400,
            || 0u64,
            |range, mut acc| {
                for i in range {
                    // Innermost layer: a tiny dependency plan per item,
                    // writing through an atomic the dependent reads.
                    let cell = AtomicUsize::new(0);
                    let mut plan = Plan::new();
                    let produce = plan.add(&[], {
                        let cell = &cell;
                        move || {
                            cell.store((e * 400 + i) as usize % 97, Ordering::SeqCst);
                        }
                    });
                    plan.add(&[produce], {
                        let cell = &cell;
                        move || {
                            // Dependency edge: the produced value is
                            // visible here.
                            assert!(cell.load(Ordering::SeqCst) < 97);
                        }
                    });
                    plan.run();
                    acc += cell.load(Ordering::SeqCst) as u64;
                }
                acc
            },
            |a, b| a + b,
        )
        .unwrap_or(0)
    });
    assert_eq!(got, expected);
}
