//! Data parallelism for the experiment engine.
//!
//! The paper's sweeps are embarrassingly parallel: 5040 orderings × N
//! benchmarks, C(22,11) = 705,432 subset trials, 23 independent
//! compile+simulate pipelines. This crate provides the primitives those
//! loops need — an **ordered** parallel map, a splittable parallel
//! fold, and an explicit task-graph [`Plan`] — all executing on one
//! process-wide work-stealing [`Pool`] (the build environment has no
//! crates.io access, so `rayon` is not an option). Workers are spawned
//! once and parked between bursts; nested parallel calls compose on the
//! same fixed worker set instead of multiplying threads.
//!
//! # Determinism
//!
//! Results are **bit-identical to the serial loop at any thread count**:
//! [`par_map`] writes each output into its input's slot (order
//! preserved), and [`par_fold_chunks`] gives every worker its own
//! accumulator over a contiguous index range, merging them in range
//! order at the end. Nothing here depends on scheduling.
//!
//! # Job-count resolution
//!
//! [`jobs`] resolves, in priority order: the process-wide override set
//! by [`set_jobs`] (the binaries' `--jobs N` flag) → the `BPFREE_JOBS`
//! environment variable → [`available_parallelism`]. The requested
//! count drives the *arithmetic* (how work splits); [`clamp_workers`]
//! caps the *thread* side at what the machine can actually run, so
//! `--jobs 64` on a 4-core box computes the 64-way split on 4 workers.

mod plan;
mod pool;
pub mod timings;

pub use plan::{NodeId, Plan};
pub use pool::{current_worker, Pool, Scope};

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// `0` means "not set".
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide worker count (`0` clears the override).
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The effective worker count: [`set_jobs`] override, else `BPFREE_JOBS`,
/// else the machine's available parallelism (at least 1).
pub fn jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = std::env::var("BPFREE_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    available_parallelism()
}

/// [`std::thread::available_parallelism`] with the `Err` case collapsed
/// to 1 — the machine-side bound every thread-count decision shares.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The one rule for turning a *requested* job count into a *thread*
/// count: at least one, at most the machine's available parallelism.
/// Splitting arithmetic (segment ranges, fold chunks) must keep
/// following the requested count — that is what keeps results a pure
/// function of `--jobs` — while anything that occupies an OS thread
/// (pool sizing, concurrent task width) goes through here. Centralized
/// so the cap cannot drift between the pool and the replay tier again.
pub fn clamp_workers(n_jobs: usize) -> usize {
    n_jobs.max(1).min(available_parallelism())
}

/// Maps `f` over `items` on [`jobs`] workers, preserving input order in
/// the output. Falls back to a plain serial map for one worker or tiny
/// inputs (avoids task overhead on the many small suites the tests
/// build).
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_jobs(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count. Tasks run on the global
/// [`Pool`] (the calling thread helps), with the concurrent task width
/// clamped by [`clamp_workers`]; outputs land in input order whatever
/// the schedule.
pub fn par_map_jobs<T, R, F>(n_jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    if n_jobs <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let tasks = clamp_workers(n_jobs).min(n).max(2);
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    let f = &f;
    // Each task claims indices from a shared atomic cursor and batches
    // its (index, value) pairs locally; the scatter below restores input
    // order, so the result is independent of which task claimed what.
    Pool::global().scope(|s| {
        for _ in 0..tasks {
            let next = &next;
            let collected = &collected;
            s.spawn(move |_| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                if !local.is_empty() {
                    collected
                        .lock()
                        .expect("par_map collection poisoned")
                        .extend(local);
                }
            });
        }
    });
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    for (i, v) in collected.into_inner().expect("par_map collection poisoned") {
        out[i] = Some(v);
    }
    out.into_iter()
        .map(|v| v.expect("every index claimed exactly once"))
        .collect()
}

/// Splits `[0, total)` into at most `parts` contiguous ranges of
/// near-equal length (never empty; fewer ranges when `total < parts`).
pub fn split_ranges(total: u64, parts: usize) -> Vec<std::ops::Range<u64>> {
    if total == 0 {
        return Vec::new();
    }
    let parts = (parts.max(1) as u64).min(total);
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts as usize);
    let mut start = 0;
    for p in 0..parts {
        let len = base + u64::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Parallel fold over `[0, total)`: each worker runs `fold` on one
/// contiguous range producing an accumulator seeded by `init`, and the
/// accumulators are merged **in range order** with `merge`. The range
/// split follows [`jobs`] — the requested count, not the thread count —
/// so the exact arithmetic is a pure function of `--jobs`; the range
/// tasks execute on the global [`Pool`]. With any associative merge
/// (given the in-order reduction) the result equals the serial fold.
pub fn par_fold_chunks<A, FInit, FFold, FMerge>(
    total: u64,
    init: FInit,
    fold: FFold,
    merge: FMerge,
) -> Option<A>
where
    A: Send,
    FInit: Fn() -> A + Sync,
    FFold: Fn(std::ops::Range<u64>, A) -> A + Sync,
    FMerge: Fn(A, A) -> A,
{
    let ranges = split_ranges(total, jobs());
    match ranges.len() {
        0 => None,
        1 => Some(fold(ranges.into_iter().next().unwrap(), init())),
        _ => {
            let fold = &fold;
            let init = &init;
            let slots: Vec<Mutex<Option<A>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
            Pool::global().scope(|s| {
                for (slot, range) in slots.iter().zip(ranges) {
                    s.spawn(move |_| {
                        let acc = fold(range, init());
                        *slot.lock().expect("par_fold slot poisoned") = Some(acc);
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("par_fold slot poisoned")
                        .expect("every range folded exactly once")
                })
                .reduce(merge)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_at_any_worker_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 7, 64] {
            assert_eq!(par_map_jobs(jobs, &items, |x| x * x), expect, "jobs={jobs}");
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        assert_eq!(par_map_jobs(8, &[] as &[u64], |x| *x), Vec::<u64>::new());
        assert_eq!(par_map_jobs(8, &[5u64], |x| x + 1), vec![6]);
    }

    #[test]
    fn split_ranges_partitions_exactly() {
        for total in [0u64, 1, 7, 100, 705_432] {
            for parts in [1usize, 2, 3, 11, 64] {
                let ranges = split_ranges(total, parts);
                let mut cursor = 0;
                for r in &ranges {
                    assert_eq!(r.start, cursor, "contiguous");
                    assert!(r.end > r.start, "non-empty");
                    cursor = r.end;
                }
                assert_eq!(cursor, total, "covers [0,{total})");
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn par_fold_matches_serial_sum() {
        // Uses whatever jobs() resolves to; the result must not depend
        // on it.
        let total = 123_456u64;
        let sum = par_fold_chunks(
            total,
            || 0u64,
            |range, mut acc| {
                for i in range {
                    acc += i;
                }
                acc
            },
            |a, b| a + b,
        )
        .unwrap();
        assert_eq!(sum, total * (total - 1) / 2);
    }

    #[test]
    fn jobs_respects_override() {
        // The only test mutating the process-wide override (tests run
        // concurrently; others must not touch it).
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn clamp_workers_bounds_both_sides() {
        assert_eq!(clamp_workers(0), 1);
        assert!(clamp_workers(1_000_000) <= available_parallelism());
        assert!(clamp_workers(1) >= 1);
    }
}
