//! Per-task timing capture — the scheduler's first observability hook.
//!
//! When enabled (the `--timings` flag or `BPFREE_TIMINGS`), call sites
//! that run meaningful units of work on the [`Pool`](crate::Pool) —
//! engine artifact queries, experiment nodes — wrap them in [`timed`].
//! Each completion appends an [`Entry`]: what kind of query ran, its
//! key, its wall-clock, and which pool worker executed it (`None` for
//! the main thread or a helping scope caller). The CLI drains the log
//! after `exp run`/`exp all` and emits it as JSON.
//!
//! Disabled (the default), the fast path is one relaxed atomic load per
//! call site — the key closure is never evaluated and nothing locks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One completed task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The query kind ("compile", "trace", "experiment", …).
    pub kind: &'static str,
    /// The query key (benchmark name, experiment name, …).
    pub key: String,
    /// Wall-clock of the task body, in microseconds.
    pub micros: u64,
    /// Pool worker that ran it, if any (see
    /// [`current_worker`](crate::current_worker)).
    pub worker: Option<usize>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static LOG: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

/// Turns capture on for the rest of the process.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Whether capture is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Runs `f`, recording an [`Entry`] when capture is enabled. `key` is
/// only evaluated when it is.
pub fn timed<R>(kind: &'static str, key: impl FnOnce() -> String, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let key = key();
    let start = Instant::now();
    let result = f();
    let entry = Entry {
        kind,
        key,
        micros: start.elapsed().as_micros() as u64,
        worker: crate::current_worker(),
    };
    LOG.lock().expect("timings log poisoned").push(entry);
    result
}

/// Takes every entry recorded so far (oldest first), leaving the log
/// empty.
pub fn drain() -> Vec<Entry> {
    std::mem::take(&mut *LOG.lock().expect("timings log poisoned"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_capture_records_nothing_and_skips_key() {
        // Runs before any enable() in this process? Not guaranteed —
        // tests share the process — so assert only on behavior that is
        // monotone: `timed` returns the closure's value either way.
        let v = timed("test", unreachable_key, || 41 + 1);
        assert_eq!(v, 42);
        fn unreachable_key() -> String {
            // Only reached when some other test enabled capture; still
            // harmless.
            "key".to_string()
        }
    }

    #[test]
    fn enabled_capture_records_kind_key_and_duration() {
        enable();
        let _ = drain();
        let v = timed("unit", || "k1".to_string(), || 7u32);
        assert_eq!(v, 7);
        let entries = drain();
        let e = entries.iter().find(|e| e.kind == "unit").expect("recorded");
        assert_eq!(e.key, "k1");
    }
}
