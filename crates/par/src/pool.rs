//! The process-wide work-stealing executor.
//!
//! Until PR 7 every parallel call site spawned its own batch of scoped
//! threads: `par_map` per call, `BranchTrace::replay_segmented` per
//! replay, the engine's `prefetch` per roster. Nested call sites
//! (a replay inside an experiment inside a batch) therefore multiplied
//! threads against each other while experiment boundaries left cores
//! idle. This module replaces all of that with one persistent [`Pool`]:
//!
//! * **Workers** are spawned once (capped at the machine's available
//!   parallelism via [`clamp_workers`](crate::clamp_workers)) and
//!   *parked* on a condvar between bursts — an idle pool costs nothing
//!   but resident stacks.
//! * **Queues** follow the classic work-stealing shape: each worker
//!   owns a deque it pushes and pops from the back (LIFO keeps the
//!   working set warm and biases towards finishing spawned subtrees),
//!   plus a global *injector* queue fed by non-worker threads. A worker
//!   with an empty deque takes from the injector, then steals from the
//!   *front* of sibling deques (FIFO stealing takes the oldest, and
//!   therefore usually largest, pending task).
//! * **Structure** comes from [`Pool::scope`]: tasks spawned on a scope
//!   may borrow from the caller's stack, the scope does not return until
//!   every transitively spawned task finished, and a panicking task is
//!   re-raised on the caller — the same contract as
//!   [`std::thread::scope`], minus the per-call thread spawn.
//!
//! # Nesting without oversubscription
//!
//! The thread whose scope is still waiting *helps*: it pops and runs
//! pool tasks (its own or anyone else's) instead of blocking. A task
//! may therefore open its own scope — replay inside an experiment
//! inside `exp all` — and the whole tree executes on the same fixed
//! worker set. Deadlock cannot arise from waiting: every queued task is
//! eventually claimed by a worker or a helping waiter, and the chain of
//! helpers bottoms out at tasks that spawn nothing.
//!
//! # Determinism
//!
//! The pool schedules; it never decides *values*. Callers that need
//! bit-identical results at any `--jobs` keep the discipline from the
//! earlier PRs: outputs written into index-addressed slots, folds over
//! contiguous ranges merged in range order. Scheduling order is
//! deliberately unobservable.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// A lifetime-erased queued task. Construction sites guarantee the
/// borrow the erasure hides outlives the task (see [`Scope::spawn`]).
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Everything the workers and scopes share.
struct Shared {
    /// Tasks pushed from threads that are not pool workers.
    injector: Mutex<VecDeque<Job>>,
    /// One deque per worker; the owner pushes/pops the back, thieves
    /// steal the front.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Push epoch: bumped (under `lock`) on every push so parking
    /// workers can detect work that arrived between their last scan and
    /// going to sleep.
    epoch: Mutex<u64>,
    /// Workers park here between bursts.
    wake: Condvar,
    /// Set by [`Pool`]'s `Drop`; parked workers exit.
    shutdown: AtomicBool,
}

impl Shared {
    /// Bumps the push epoch and wakes parked workers.
    fn notify(&self) {
        let mut epoch = self.epoch.lock().expect("pool epoch poisoned");
        *epoch += 1;
        drop(epoch);
        self.wake.notify_all();
    }

    /// Queues `job` on the current worker's own deque when called from
    /// a pool thread, else on the global injector.
    fn push(self: &Arc<Self>, job: Job) {
        let mine = WORKER.with(|w| {
            w.borrow().as_ref().and_then(|ctx| {
                if Arc::ptr_eq(&ctx.shared, self) {
                    Some(ctx.index)
                } else {
                    None
                }
            })
        });
        match mine {
            Some(i) => self.deques[i]
                .lock()
                .expect("pool deque poisoned")
                .push_back(job),
            None => self
                .injector
                .lock()
                .expect("pool injector poisoned")
                .push_back(job),
        }
        self.notify();
    }

    /// Claims one task: own deque back (workers only), then injector
    /// front, then steal the front of sibling deques.
    fn find(&self, own: Option<usize>) -> Option<Job> {
        if let Some(i) = own {
            if let Some(job) = self.deques[i]
                .lock()
                .expect("pool deque poisoned")
                .pop_back()
            {
                return Some(job);
            }
        }
        if let Some(job) = self
            .injector
            .lock()
            .expect("pool injector poisoned")
            .pop_front()
        {
            return Some(job);
        }
        let n = self.deques.len();
        let start = own.map_or(0, |i| i + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == own {
                continue;
            }
            if let Some(job) = self.deques[victim]
                .lock()
                .expect("pool deque poisoned")
                .pop_front()
            {
                return Some(job);
            }
        }
        None
    }
}

/// What a pool thread knows about itself (thread-local).
struct WorkerCtx {
    shared: Arc<Shared>,
    index: usize,
}

thread_local! {
    static WORKER: std::cell::RefCell<Option<WorkerCtx>> =
        const { std::cell::RefCell::new(None) };
}

/// The current thread's pool worker index, or `None` off the pool
/// (the main thread, a test thread, a helping scope caller). Feeds the
/// `worker` column of the `--timings` report.
pub fn current_worker() -> Option<usize> {
    WORKER.with(|w| w.borrow().as_ref().map(|ctx| ctx.index))
}

fn worker_main(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| {
        *w.borrow_mut() = Some(WorkerCtx {
            shared: shared.clone(),
            index,
        })
    });
    loop {
        if let Some(job) = shared.find(Some(index)) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Park: snapshot the push epoch, re-scan, and only then sleep —
        // a push between scan and sleep bumps the epoch and is caught by
        // the recheck under the lock. The timeout is a belt-and-braces
        // backstop, not load-bearing.
        let seen = *shared.epoch.lock().expect("pool epoch poisoned");
        if let Some(job) = shared.find(Some(index)) {
            job();
            continue;
        }
        let guard = shared.epoch.lock().expect("pool epoch poisoned");
        if *guard == seen && !shared.shutdown.load(Ordering::Acquire) {
            let _ = shared
                .wake
                .wait_timeout(guard, Duration::from_millis(50))
                .expect("pool epoch poisoned");
        }
    }
}

/// A persistent work-stealing thread pool. Most code wants the
/// process-wide instance from [`Pool::global`]; tests build private
/// pools with [`Pool::new`] (worker threads exit when the pool drops).
pub struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

impl Pool {
    /// A pool with exactly `workers` worker threads (at least one).
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            epoch: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        for index in 0..workers {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("bpfree-pool-{index}"))
                .spawn(move || worker_main(shared, index))
                .expect("spawning pool worker");
        }
        Pool { shared, workers }
    }

    /// The process-wide pool, created on first use with
    /// [`clamp_workers`](crate::clamp_workers)`(`[`jobs`](crate::jobs)`())`
    /// workers: `--jobs` sizes it, the machine's available parallelism
    /// caps it. It lives for the rest of the process.
    pub fn global() -> &'static Pool {
        GLOBAL.get_or_init(|| Pool::new(crate::clamp_workers(crate::jobs())))
    }

    /// This pool's worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` with a [`Scope`] on which tasks can be spawned, then
    /// waits for every transitively spawned task — *helping to execute
    /// queued tasks while it waits*, so scopes nest freely on the fixed
    /// worker set. If `f` or any task panicked, the panic resumes here
    /// (after all tasks finished, like [`std::thread::scope`]).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let scope = Scope {
            shared: self.shared.clone(),
            state: Arc::new(ScopeState::new()),
            _marker: std::marker::PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Always drain, even when `f` itself panicked: spawned tasks
        // borrow the caller's stack and MUST finish before we unwind
        // past it (this wait is what makes the lifetime erasure in
        // `spawn` sound).
        scope.wait();
        let task_panic = scope
            .state
            .panic
            .lock()
            .expect("scope panic slot poisoned")
            .take();
        match result {
            Err(p) => panic::resume_unwind(p),
            Ok(value) => {
                if let Some(p) = task_panic {
                    panic::resume_unwind(p);
                }
                value
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify();
    }
}

/// Completion tracking for one [`Pool::scope`] call.
struct ScopeState {
    /// Spawned-but-unfinished task count.
    pending: AtomicUsize,
    /// First panic payload from any task of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// The scope caller parks here when no queued work is available.
    done_lock: Mutex<()>,
    done: Condvar,
}

impl ScopeState {
    fn new() -> ScopeState {
        ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done: Condvar::new(),
        }
    }
}

/// A spawn handle tied to one [`Pool::scope`] call. Tasks receive a
/// fresh `&Scope` so they can spawn siblings (the task-graph planner
/// releases dependents this way).
pub struct Scope<'env> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    /// Invariant over `'env` (the `&mut` makes it so): keeps callers
    /// from shrinking the scope lifetime and sneaking in shorter-lived
    /// borrows.
    _marker: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawns `f` onto the pool. `f` may borrow anything that outlives
    /// the `scope` call and may itself spawn onto the scope it is
    /// handed. Panics in `f` are captured and re-raised by
    /// [`Pool::scope`] after the whole scope drains.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::SeqCst);
        let shared = self.shared.clone();
        let state = self.state.clone();
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let scope = Scope {
                shared: shared.clone(),
                state: state.clone(),
                _marker: std::marker::PhantomData,
            };
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(|| f(&scope))) {
                scope
                    .state
                    .panic
                    .lock()
                    .expect("scope panic slot poisoned")
                    .get_or_insert(p);
            }
            drop(scope);
            if state.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last task out: wake the scope caller. Taking the lock
                // orders this notify after the caller's pending recheck.
                let _guard = state.done_lock.lock().expect("scope lock poisoned");
                state.done.notify_all();
            }
        });
        // SAFETY: the only lifetime-erased escape hatch in this crate.
        // `Pool::scope` does not return (not even by panic) until
        // `pending` hits zero, i.e. until this closure has run and been
        // dropped, so every `'env` borrow it captures strictly outlives
        // it. The transmute only erases that lifetime; `Send` and the
        // vtable are unchanged.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send + 'static>>(
                job,
            )
        };
        self.shared.push(job);
    }

    /// Blocks until this scope's pending count is zero, executing queued
    /// pool tasks (anyone's) while there are any.
    fn wait(&self) {
        let own = WORKER.with(|w| {
            w.borrow().as_ref().and_then(|ctx| {
                if Arc::ptr_eq(&ctx.shared, &self.shared) {
                    Some(ctx.index)
                } else {
                    None
                }
            })
        });
        loop {
            if self.state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            if let Some(job) = self.shared.find(own) {
                job();
                continue;
            }
            // Nothing runnable: our remaining tasks are mid-flight on
            // other threads. Park until the last one signals (with a
            // short timeout so a task spawned elsewhere re-opens the
            // help loop promptly).
            let guard = self.state.done_lock.lock().expect("scope lock poisoned");
            if self.state.pending.load(Ordering::SeqCst) == 0 {
                return;
            }
            let _ = self
                .state
                .done
                .wait_timeout(guard, Duration::from_micros(500))
                .expect("scope lock poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_runs_borrowed_tasks_to_completion() {
        let pool = Pool::new(2);
        let data: Vec<u64> = (0..100).collect();
        let sum = AtomicUsize::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(7) {
                let sum = &sum;
                s.spawn(move |_| {
                    let local: u64 = chunk.iter().sum();
                    sum.fetch_add(local as usize, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn nested_scopes_complete_on_fixed_workers() {
        let pool = Pool::new(1);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                let hits = &hits;
                let pool = &pool;
                s.spawn(move |_| {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move |_| {
                                hits.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn tasks_can_spawn_siblings_through_their_scope_handle() {
        let pool = Pool::new(2);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            let hits = &hits;
            s.spawn(move |s| {
                hits.fetch_add(1, Ordering::Relaxed);
                s.spawn(move |s| {
                    hits.fetch_add(1, Ordering::Relaxed);
                    s.spawn(move |_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn panicking_task_propagates_after_scope_drains() {
        let pool = Pool::new(2);
        let survivors = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let survivors = &survivors;
                s.spawn(|_| panic!("task boom"));
                for _ in 0..8 {
                    s.spawn(move |_| {
                        survivors.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let payload = result.expect_err("scope must re-raise the task panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "task boom");
        // The scope drained before unwinding: every sibling ran.
        assert_eq!(survivors.load(Ordering::Relaxed), 8);
        // The pool is still usable afterwards.
        let ok = AtomicUsize::new(0);
        pool.scope(|s| {
            let ok = &ok;
            s.spawn(move |_| {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn global_pool_is_shared_and_clamped() {
        let p1 = Pool::global();
        let p2 = Pool::global();
        assert!(std::ptr::eq(p1, p2));
        assert!(p1.workers() >= 1);
        assert!(p1.workers() <= crate::available_parallelism());
    }
}
