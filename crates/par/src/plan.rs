//! An explicit task-graph planner over the [`Pool`].
//!
//! [`Pool::scope`] expresses fork–join trees; batch runs want a DAG:
//! "trace `doduc` after compiling it, run `table5` after every trace it
//! reads is recorded". A [`Plan`] collects nodes (closures) with
//! explicit dependency edges and executes the whole graph on the pool —
//! a node is queued the moment its last dependency finishes, so
//! independent chains overlap instead of running level-by-level.
//!
//! # Determinism
//!
//! The planner orders *scheduling*, never values: nodes communicate
//! through whatever synchronized state they share (engine memos,
//! per-node output slots), and callers emit results in their own fixed
//! order afterwards. At `--jobs 1` (or on [`Plan::run`] with a
//! single-worker machine and nothing to overlap) the graph degenerates
//! to insertion order, which is always a valid topological order
//! because edges can only point at already-added nodes.
//!
//! # Panics
//!
//! A panicking node poisons its dependents: they are never queued, the
//! rest of the running graph drains, and the panic resumes on the
//! [`Plan::run`] caller (the [`Pool::scope`] contract).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::pool::{Pool, Scope};

/// A node handle returned by [`Plan::add`]; pass to later `add` calls
/// as a dependency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(usize);

struct Node<'env> {
    /// Taken (once) when the node is executed.
    work: Mutex<Option<Box<dyn FnOnce() + Send + 'env>>>,
    /// Unfinished dependency count **plus one** (the bias is released
    /// by [`Plan::run_on`]'s start-up scan); whoever decrements it to
    /// zero queues the node, so it queues exactly once even when a
    /// dependency finishes while the scan is still walking the list.
    pending: AtomicUsize,
    /// Nodes waiting on this one.
    dependents: Vec<usize>,
}

/// A batch of dependency-ordered tasks. Build with [`Plan::add`], run
/// with [`Plan::run`]/[`Plan::run_on`].
#[derive(Default)]
pub struct Plan<'env> {
    nodes: Vec<Node<'env>>,
}

impl<'env> Plan<'env> {
    /// An empty plan.
    pub fn new() -> Plan<'env> {
        Plan { nodes: Vec::new() }
    }

    /// The number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the plan holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node that runs after every node in `deps`. Duplicate
    /// dependencies are counted once. Cycles are unrepresentable:
    /// dependencies must already have been added.
    pub fn add<F>(&mut self, deps: &[NodeId], f: F) -> NodeId
    where
        F: FnOnce() + Send + 'env,
    {
        let id = self.nodes.len();
        let mut uniq: Vec<usize> = deps.iter().map(|d| d.0).collect();
        uniq.sort_unstable();
        uniq.dedup();
        for &d in &uniq {
            assert!(d < id, "Plan dependencies must be added before dependents");
            self.nodes[d].dependents.push(id);
        }
        self.nodes.push(Node {
            work: Mutex::new(Some(Box::new(f))),
            pending: AtomicUsize::new(uniq.len() + 1),
            dependents: Vec::new(),
        });
        NodeId(id)
    }

    /// Executes the graph on the global [`Pool`]. With an effective job
    /// count of one ([`crate::jobs`]` <= 1`) the nodes run serially on
    /// the calling thread in insertion order instead — no queueing, no
    /// worker wakeups, identical effects.
    pub fn run(self) {
        if crate::jobs() <= 1 {
            self.run_serial();
        } else {
            self.run_on(Pool::global());
        }
    }

    /// Executes every node on the calling thread, in insertion order.
    pub fn run_serial(self) {
        for node in &self.nodes {
            let work = node
                .work
                .lock()
                .expect("plan node poisoned")
                .take()
                .expect("plan node executed twice");
            work();
        }
    }

    /// Executes the graph on `pool`, queueing each node as soon as its
    /// last dependency completes.
    pub fn run_on(self, pool: &Pool) {
        fn queue<'s, 'env: 's>(s: &Scope<'s>, nodes: &'s [Node<'env>], index: usize) {
            s.spawn(move |s| {
                let work = nodes[index]
                    .work
                    .lock()
                    .expect("plan node poisoned")
                    .take()
                    .expect("plan node executed twice");
                work();
                for &dep in &nodes[index].dependents {
                    if nodes[dep].pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                        queue(s, nodes, dep);
                    }
                }
            });
        }
        let nodes = &self.nodes;
        pool.scope(|s| {
            // Release each node's +1 bias; a node whose dependencies
            // all finished (or that never had any) queues here, and a
            // node still waiting queues from its last dependency's
            // release below — exactly one path wins.
            for (index, node) in nodes.iter().enumerate() {
                if node.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
                    queue(s, nodes, index);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn respects_dependency_edges() {
        let log: StdMutex<Vec<&'static str>> = StdMutex::new(Vec::new());
        let pool = Pool::new(4);
        let mut plan = Plan::new();
        let push = |what: &'static str| {
            let log = &log;
            move || log.lock().unwrap().push(what)
        };
        let a = plan.add(&[], push("a"));
        let b = plan.add(&[a], push("b"));
        let c = plan.add(&[a], push("c"));
        let _d = plan.add(&[b, c], push("d"));
        plan.run_on(&pool);
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), 4);
        let pos = |w| log.iter().position(|x| *x == w).unwrap();
        assert!(pos("a") < pos("b"));
        assert!(pos("a") < pos("c"));
        assert!(pos("b") < pos("d"));
        assert!(pos("c") < pos("d"));
    }

    #[test]
    fn serial_run_uses_insertion_order() {
        let log: StdMutex<Vec<usize>> = StdMutex::new(Vec::new());
        let mut plan = Plan::new();
        let mut prev: Option<NodeId> = None;
        for i in 0..5 {
            let log = &log;
            let deps: Vec<NodeId> = prev.into_iter().collect();
            prev = Some(plan.add(&deps, move || log.lock().unwrap().push(i)));
        }
        plan.run_serial();
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wide_diamond_converges() {
        let pool = Pool::new(2);
        let count = AtomicUsize::new(0);
        let mut plan = Plan::new();
        let root = plan.add(&[], || {});
        let mids: Vec<NodeId> = (0..32)
            .map(|_| {
                let count = &count;
                plan.add(&[root], move || {
                    count.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        let count_ref = &count;
        plan.add(&mids, move || {
            assert_eq!(count_ref.load(Ordering::Relaxed), 32, "all mids ran first");
            count_ref.fetch_add(100, Ordering::Relaxed);
        });
        plan.run_on(&pool);
        assert_eq!(count.load(Ordering::Relaxed), 132);
    }

    #[test]
    #[should_panic(expected = "added before dependents")]
    fn forward_edges_are_rejected() {
        let mut plan = Plan::new();
        let _ = plan.add(&[NodeId(3)], || {});
    }

    #[test]
    fn panicking_node_skips_dependents_and_propagates() {
        let pool = Pool::new(2);
        let ran_dependent = AtomicUsize::new(0);
        let ran_sibling = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut plan = Plan::new();
            let bad = plan.add(&[], || panic!("node boom"));
            let dep = &ran_dependent;
            plan.add(&[bad], move || {
                dep.fetch_add(1, Ordering::Relaxed);
            });
            let sib = &ran_sibling;
            plan.add(&[], move || {
                sib.fetch_add(1, Ordering::Relaxed);
            });
            plan.run_on(&pool);
        }));
        assert!(result.is_err(), "node panic reaches the run caller");
        assert_eq!(ran_dependent.load(Ordering::Relaxed), 0);
        assert_eq!(ran_sibling.load(Ordering::Relaxed), 1);
    }
}
